//! The register-tiled inner kernels of the packed GEMM path, behind one
//! dispatch point.
//!
//! One call computes a single `mr × nr` tile of `C += A·B` from packed
//! panels (see [`crate::pack`] for the layout). Two implementations live
//! behind [`MicrokernelImpl`]:
//!
//! * **`Avx2`** (x86_64 with AVX2+FMA, runtime-detected): an explicit
//!   `f64x4` kernel over a `6 × 8` tile — twelve 256-bit accumulators,
//!   two packed-`B` loads and six `A` broadcasts feeding twelve
//!   `vfmadd231pd` per `k` step (the BLIS Haswell shape; 15 of the 16
//!   architectural `ymm` registers are live).
//! * **`Scalar`** (everything else, `cfg(miri)`, and the
//!   `CUBEMM_FORCE_SCALAR=1` override): the portable `4 × 8` tile with
//!   one `f64::mul_add` per element step.
//!
//! Pack, GEMM-driver, and ABFT code never name a lane width: they ask the
//! active impl for its `mr()`/`nr()` and call [`MicrokernelImpl::run`].
//!
//! # Bitwise contract
//!
//! Both kernels compute every `C` element as the *same* float sequence:
//! one private accumulator per element, updated by a fused multiply-add
//! (single rounding) for `k` ascending, then one plain add into `C` per
//! `kc` block. `f64::mul_add` and `vfmadd` are both correctly rounded,
//! so for a fixed `kc` split the product is **bit-for-bit identical**
//! across `Scalar`/`Avx2` and across every tile shape and thread count
//! (pinned by `tests/determinism.rs`). On targets that lack a hardware
//! FMA the scalar kernel falls back to the (slower, still correctly
//! rounded) libm `fma`, preserving the bits.

use std::sync::OnceLock;

/// Largest microkernel tile height any impl uses (panel-slice bound for
/// stack-allocated scratch in pack/microkernel internals).
pub const MAX_MR: usize = 8;
/// Largest microkernel tile width any impl uses.
pub const MAX_NR: usize = 8;

/// Tile height of the portable scalar microkernel.
pub const SCALAR_MR: usize = 4;
/// Tile width of the portable scalar microkernel.
pub const SCALAR_NR: usize = 8;

/// Tile height of the AVX2 microkernel.
pub const AVX2_MR: usize = 6;
/// Tile width of the AVX2 microkernel.
pub const AVX2_NR: usize = 8;

/// Which register-tiled inner kernel the packed GEMM runs.
///
/// The selection is a pure function of the host: [`MicrokernelImpl::active`]
/// caches the runtime-detected best kernel for the process. Code that
/// needs a *specific* impl (the forced-scalar determinism suite, the
/// `packed-scalar` bench rows) passes one explicitly through
/// [`crate::gemm::gemm_acc_with_microkernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicrokernelImpl {
    /// Portable `4 × 8` tile, `f64::mul_add` per element step.
    Scalar,
    /// `6 × 8` tile of `f64x4` FMA intrinsics (x86_64, AVX2+FMA).
    Avx2,
}

impl MicrokernelImpl {
    /// Detects the best implementation the host can run. Ignores the
    /// `CUBEMM_FORCE_SCALAR` override; most callers want
    /// [`MicrokernelImpl::active`].
    pub fn detect() -> MicrokernelImpl {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return MicrokernelImpl::Avx2;
            }
        }
        MicrokernelImpl::Scalar
    }

    /// The process-wide selected implementation: [`MicrokernelImpl::detect`]
    /// unless `CUBEMM_FORCE_SCALAR` is set to anything but `0`/empty
    /// (read once; the choice never changes within a process, which is
    /// what keeps repeated runs — ABFT reruns, serve fingerprints —
    /// bitwise stable).
    pub fn active() -> MicrokernelImpl {
        static ACTIVE: OnceLock<MicrokernelImpl> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            let forced = std::env::var("CUBEMM_FORCE_SCALAR")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            if forced {
                MicrokernelImpl::Scalar
            } else {
                MicrokernelImpl::detect()
            }
        })
    }

    /// Tile height (rows of `C` per register tile).
    #[inline]
    pub const fn mr(self) -> usize {
        match self {
            MicrokernelImpl::Scalar => SCALAR_MR,
            MicrokernelImpl::Avx2 => AVX2_MR,
        }
    }

    /// Tile width (columns of `C` per register tile).
    #[inline]
    pub const fn nr(self) -> usize {
        match self {
            MicrokernelImpl::Scalar => SCALAR_NR,
            MicrokernelImpl::Avx2 => AVX2_NR,
        }
    }

    /// Stable name, used by the tuning file to key persisted blocking
    /// parameters to the kernel they were measured with.
    pub const fn name(self) -> &'static str {
        match self {
            MicrokernelImpl::Scalar => "scalar-4x8",
            MicrokernelImpl::Avx2 => "avx2-6x8",
        }
    }

    /// Computes `C[0..mr, 0..nr] += Ap · Bp` for one register tile.
    ///
    /// `ap` is one packed `self.mr()`-row panel and `bp` one packed
    /// `self.nr()`-column panel, both `kc` steps long
    /// (`ap.len() == kc * self.mr()`, `bp.len() == kc * self.nr()`);
    /// panels are zero-padded by the packers, so the full tile is
    /// computed and only the write-back is masked to the `mr × nr` live
    /// region.
    ///
    /// # Safety
    ///
    /// `c` must point at the tile's top-left element of a row-major
    /// matrix with row stride `ldc >= nr`, valid for reads and writes
    /// over the `mr` rows × `nr` columns footprint. Distinct tiles may
    /// be updated concurrently from several threads **only if their
    /// footprints are disjoint** (the packed driver gives every tile
    /// exactly one writer). An `Avx2` value must only be run on a host
    /// where AVX2 and FMA were detected.
    pub unsafe fn run(self, ap: &[f64], bp: &[f64], c: *mut f64, ldc: usize, mr: usize, nr: usize) {
        debug_assert_eq!(ap.len() % self.mr(), 0);
        debug_assert_eq!(bp.len() % self.nr(), 0);
        debug_assert_eq!(ap.len() / self.mr(), bp.len() / self.nr());
        debug_assert!(mr <= self.mr() && nr <= self.nr() && nr <= ldc);
        match self {
            MicrokernelImpl::Scalar => {
                // SAFETY: forwarded caller contract (footprint validity).
                unsafe { scalar_microkernel(ap, bp, c, ldc, mr, nr) }
            }
            MicrokernelImpl::Avx2 => {
                #[cfg(all(target_arch = "x86_64", not(miri)))]
                // SAFETY: forwarded caller contract; the caller guarantees
                // AVX2+FMA were detected before constructing this variant.
                unsafe {
                    avx2_microkernel(ap, bp, c, ldc, mr, nr)
                }
                #[cfg(not(all(target_arch = "x86_64", not(miri))))]
                // SAFETY: forwarded caller contract (footprint validity).
                unsafe {
                    scalar_microkernel(ap, bp, c, ldc, mr, nr)
                }
            }
        }
    }
}

/// The portable tile body, generic so the FMA-target wrapper below can
/// re-instantiate it with hardware fused multiply-adds.
///
/// # Safety
/// See [`MicrokernelImpl::run`].
#[inline(always)]
unsafe fn scalar_body(ap: &[f64], bp: &[f64], c: *mut f64, ldc: usize, mr: usize, nr: usize) {
    let mut acc = [[0.0f64; SCALAR_NR]; SCALAR_MR];
    for (av, bv) in ap.chunks_exact(SCALAR_MR).zip(bp.chunks_exact(SCALAR_NR)) {
        for i in 0..SCALAR_MR {
            let ai = av[i];
            for j in 0..SCALAR_NR {
                // One fused multiply-add per element step: the single
                // rounding is what makes this path bit-identical to the
                // AVX2 kernel's vfmadd lanes.
                acc[i][j] = ai.mul_add(bv[j], acc[i][j]);
            }
        }
    }
    for (i, row) in acc.iter().take(mr).enumerate() {
        // SAFETY: take(mr)/take(nr) clamp the walk to the mr × nr live
        // region of the caller-guaranteed footprint.
        let crow = unsafe { c.add(i * ldc) };
        for (j, &v) in row.iter().take(nr).enumerate() {
            // SAFETY: see above; j < nr <= ldc keeps the offset in row i.
            unsafe { *crow.add(j) += v };
        }
    }
}

/// Dispatches the scalar tile to the FMA-compiled instantiation when the
/// hardware has one (so `mul_add` is a single instruction, not a libm
/// call), falling back to the portable build.
///
/// # Safety
/// See [`MicrokernelImpl::run`].
unsafe fn scalar_microkernel(
    ap: &[f64],
    bp: &[f64],
    c: *mut f64,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::arch::is_x86_feature_detected!("fma") {
            // SAFETY: the fma feature was just detected; tile contract
            // forwarded from the caller.
            return unsafe { scalar_body_fma(ap, bp, c, ldc, mr, nr) };
        }
    }
    // SAFETY: tile contract forwarded from the caller.
    unsafe { scalar_body(ap, bp, c, ldc, mr, nr) }
}

/// The portable tile recompiled with the `fma` target feature, so every
/// `f64::mul_add` lowers to one `vfmadd` instruction (bit-identical to
/// the libm fallback — both are correctly rounded).
///
/// # Safety
/// See [`MicrokernelImpl::run`]; additionally the host must support the
/// `fma` target feature.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "fma")]
unsafe fn scalar_body_fma(ap: &[f64], bp: &[f64], c: *mut f64, ldc: usize, mr: usize, nr: usize) {
    // SAFETY: tile contract forwarded from the caller.
    unsafe { scalar_body(ap, bp, c, ldc, mr, nr) }
}

/// The `6 × 8` AVX2+FMA tile: twelve `f64x4` accumulators held in
/// registers across the whole `k` loop.
///
/// # Safety
/// See [`MicrokernelImpl::run`]; additionally the host must support the
/// `avx2` and `fma` target features (the dispatcher checked).
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn avx2_microkernel(ap: &[f64], bp: &[f64], c: *mut f64, ldc: usize, mr: usize, nr: usize) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_set1_pd, _mm256_setzero_pd,
        _mm256_storeu_pd,
    };
    let kc = bp.len() / AVX2_NR;
    // acc[i][h] covers C[i][4h .. 4h+4]; 12 ymm registers, plus two for
    // the B panel and one broadcast — LLVM keeps all of them resident.
    let mut acc = [[_mm256_setzero_pd(); 2]; AVX2_MR];
    let mut a = ap.as_ptr();
    let mut b = bp.as_ptr();
    for _ in 0..kc {
        // SAFETY: `b` walks bp in NR-sized steps for kc = bp.len()/NR
        // iterations, so both 4-lane loads stay inside the panel.
        // Packed panels are f64-aligned; loadu has no alignment demand.
        let b0 = unsafe { _mm256_loadu_pd(b) };
        // SAFETY: as above, offset 4 of the 8-wide step.
        let b1 = unsafe { _mm256_loadu_pd(b.add(4)) };
        for (i, accr) in acc.iter_mut().enumerate() {
            // SAFETY: `a` walks ap in MR-sized steps for kc =
            // ap.len()/MR iterations; i < MR keeps the lane in-step.
            let ai = unsafe { _mm256_set1_pd(*a.add(i)) };
            accr[0] = _mm256_fmadd_pd(ai, b0, accr[0]);
            accr[1] = _mm256_fmadd_pd(ai, b1, accr[1]);
        }
        // SAFETY: the loop bounds above keep both pointers inside their
        // panels until the final (unused) post-increment.
        a = unsafe { a.add(AVX2_MR) };
        // SAFETY: as above.
        b = unsafe { b.add(AVX2_NR) };
    }
    if mr == AVX2_MR && nr == AVX2_NR {
        for (i, accr) in acc.iter().enumerate() {
            // SAFETY: full tile: i < MR = mr rows inside the caller's
            // footprint; each row touches columns 0..8 = nr <= ldc.
            let crow = unsafe { c.add(i * ldc) };
            // SAFETY: see above — both halves of row i are in bounds;
            // unaligned C rows are allowed (loadu/storeu).
            unsafe {
                _mm256_storeu_pd(crow, _mm256_add_pd(_mm256_loadu_pd(crow), accr[0]));
                _mm256_storeu_pd(
                    crow.add(4),
                    _mm256_add_pd(_mm256_loadu_pd(crow.add(4)), accr[1]),
                );
            }
        }
    } else {
        // Ragged edge: spill the accumulators and mask the write-back.
        let mut spill = [[0.0f64; AVX2_NR]; AVX2_MR];
        for (i, accr) in acc.iter().enumerate() {
            // SAFETY: spill rows are 8 f64s — exactly two 4-lane stores.
            unsafe {
                _mm256_storeu_pd(spill[i].as_mut_ptr(), accr[0]);
                _mm256_storeu_pd(spill[i].as_mut_ptr().add(4), accr[1]);
            }
        }
        for (i, row) in spill.iter().take(mr).enumerate() {
            // SAFETY: take(mr)/take(nr) clamp the walk to the mr × nr
            // live region of the caller-guaranteed footprint.
            let crow = unsafe { c.add(i * ldc) };
            for (j, &v) in row.iter().take(nr).enumerate() {
                // SAFETY: see above; j < nr <= ldc keeps the offset in row i.
                unsafe { *crow.add(j) += v };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{pack_a, pack_b, packed_a_len, packed_b_len};
    use crate::Matrix;

    fn impls() -> Vec<MicrokernelImpl> {
        let mut v = vec![MicrokernelImpl::Scalar];
        if MicrokernelImpl::detect() == MicrokernelImpl::Avx2 {
            v.push(MicrokernelImpl::Avx2);
        }
        v
    }

    #[test]
    fn full_tile_matches_scalar_product() {
        for mk in impls() {
            let (m, k, n) = (mk.mr(), 5, mk.nr());
            let a = Matrix::random(m, k, 7);
            let b = Matrix::random(k, n, 8);
            let mut ap = vec![0.0; packed_a_len(m, k, mk.mr())];
            let mut bp = vec![0.0; packed_b_len(k, n, mk.nr())];
            pack_a(&a, 0, 0, m, k, mk.mr(), &mut ap);
            pack_b(&b, 0, 0, k, n, mk.nr(), &mut bp);
            let mut c = Matrix::zeros(m, n);
            // SAFETY: `c` is m × n row-major with ldc = n; the full tile
            // fits, and `mk` came from detection.
            unsafe { mk.run(&ap, &bp, c.as_mut_slice().as_mut_ptr(), n, m, n) };
            let mut want = Matrix::zeros(m, n);
            for i in 0..m {
                for j in 0..n {
                    for l in 0..k {
                        want[(i, j)] += a[(i, l)] * b[(l, j)];
                    }
                }
            }
            assert!(c.max_abs_diff(&want) < 1e-12, "{mk:?}");
        }
    }

    #[test]
    fn masked_edge_tile_leaves_outside_untouched() {
        for mk in impls() {
            let (mr, nr, k) = (mk.mr() - 1, mk.nr() - 3, 4);
            let a = Matrix::random(mr, k, 1);
            let b = Matrix::random(k, nr, 2);
            let mut ap = vec![0.0; packed_a_len(mr, k, mk.mr())];
            let mut bp = vec![0.0; packed_b_len(k, nr, mk.nr())];
            pack_a(&a, 0, 0, mr, k, mk.mr(), &mut ap);
            pack_b(&b, 0, 0, k, nr, mk.nr(), &mut bp);
            // Embed the tile in a larger C and check the frame stays put.
            let ldc = mk.nr() + 3;
            let mut c = Matrix::from_fn(mk.mr() + 1, ldc, |_, _| 9.0);
            // SAFETY: `c` is (MR+1) × ldc row-major; the masked mr × nr
            // tile at its top-left corner is in bounds.
            unsafe { mk.run(&ap, &bp, c.as_mut_slice().as_mut_ptr(), ldc, mr, nr) };
            for i in 0..mr {
                for j in 0..nr {
                    let mut want = 9.0;
                    for l in 0..k {
                        want += a[(i, l)] * b[(l, j)];
                    }
                    assert!((c[(i, j)] - want).abs() < 1e-12, "{mk:?} ({i},{j})");
                }
            }
            assert_eq!(c[(mr, 0)], 9.0, "{mk:?}");
            assert_eq!(c[(0, nr)], 9.0, "{mk:?}");
        }
    }

    #[test]
    fn impls_agree_bitwise_on_one_tile() {
        // The bitwise contract at its smallest scope: one full scalar
        // tile vs the same region of one AVX2 tile (when the host has
        // it). Padding rows/columns of the wider tile accumulate zeros
        // and are masked off, so the live region must match exactly.
        if MicrokernelImpl::detect() != MicrokernelImpl::Avx2 {
            return;
        }
        let (m, k, n) = (SCALAR_MR, 23, SCALAR_NR);
        let a = Matrix::random(m, k, 41);
        let b = Matrix::random(k, n, 42);
        let mut got = [Matrix::zeros(m, n), Matrix::zeros(m, n)];
        for (mi, mk) in [MicrokernelImpl::Scalar, MicrokernelImpl::Avx2]
            .into_iter()
            .enumerate()
        {
            let mut ap = vec![0.0; packed_a_len(m, k, mk.mr())];
            let mut bp = vec![0.0; packed_b_len(k, n, mk.nr())];
            pack_a(&a, 0, 0, m, k, mk.mr(), &mut ap);
            pack_b(&b, 0, 0, k, n, mk.nr(), &mut bp);
            // SAFETY: m × n row-major with ldc = n; m <= mk.mr() and
            // n <= mk.nr() masked tile; Avx2 only runs when detected.
            unsafe { mk.run(&ap, &bp, got[mi].as_mut_slice().as_mut_ptr(), n, m, n) };
        }
        assert_eq!(got[0], got[1], "scalar vs avx2 tile bits");
    }

    #[test]
    fn names_and_shapes_are_consistent() {
        assert_eq!(MicrokernelImpl::Scalar.name(), "scalar-4x8");
        assert_eq!(MicrokernelImpl::Avx2.name(), "avx2-6x8");
        assert_eq!(MicrokernelImpl::Scalar.mr(), 4);
        assert_eq!(MicrokernelImpl::Avx2.mr(), 6);
        for mk in [MicrokernelImpl::Scalar, MicrokernelImpl::Avx2] {
            assert!(mk.mr() <= MAX_MR && mk.nr() <= MAX_NR);
        }
        // active() is stable across calls within a process.
        assert_eq!(MicrokernelImpl::active(), MicrokernelImpl::active());
    }
}
