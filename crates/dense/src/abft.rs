//! Algorithm-based fault tolerance (ABFT) kernels: Huang–Abraham
//! checksum encoding for matrix multiplication.
//!
//! The classic construction (Huang & Abraham, 1984): augment `A` with a
//! **column-checksum row** and `B` with a **row-checksum column**. Their
//! product then carries both checksums of `C = A·B` for free:
//!
//! ```text
//! [ A ]   [ B | Be ]   [ C      | Ce  ]        e  = all-ones vector
//! [e'A] ·            = [ e'C    | e'Ce]        e' = its transpose
//! ```
//!
//! Any *single* corrupted entry of the product leaves a nonzero **row
//! residual** (row sum minus row checksum) in exactly one row and a
//! nonzero **column residual** in exactly one column; their intersection
//! locates the error and either residual is exactly the error value, so
//! subtracting it restores `C` — with exact (e.g. integer-valued)
//! arithmetic, bit for bit. A corrupted *input* block (one wrong word of
//! `A` in flight) smears the error across one row of `C` (a wrong `B`
//! word, one column), which the same residuals correct entry-wise: the
//! unique bad row pins the locus and each column residual is that
//! column's error. See DESIGN.md §12 for the full case analysis.
//!
//! To keep the augmented problem acceptable to *square-only* distributed
//! algorithms, the checksum row/column live at index `n` of an
//! `(n + pad) × (n + pad)` matrix whose remaining pad rows/columns are
//! zero. Zero rows of `A` and zero columns of `B` contribute nothing to
//! the product, so the checksum identities are undisturbed and the
//! top-left `n × n` block of the augmented product is exactly `C`
//! ([`strip`] recovers it).
//!
//! The augmented multiply itself is an ordinary [`crate::gemm`] call,
//! so it rides whatever microkernel the host dispatches to — and the
//! packed kernel's determinism contract (bitwise-identical products
//! across thread counts and across the SIMD/scalar microkernels, see
//! `gemm.rs`) extends to the residual checks: an ABFT verdict never
//! depends on which CPU or thread count computed the frame
//! (pinned by `tests/determinism.rs`).

use crate::Matrix;

/// Verdict of [`verify_and_correct`]: what the checksum residuals said
/// about the (possibly corrupted) augmented product.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Every residual was within tolerance: the product is consistent.
    Clean,
    /// Residuals located a correctable error pattern; `fixes` lists the
    /// `(row, col)` entries that were repaired, in application order.
    Corrected {
        /// Entries of the augmented product that were repaired.
        fixes: Vec<(usize, usize)>,
    },
    /// The residual pattern implicates at least two distinct rows *and*
    /// two distinct columns — more than a single fault — so no unique
    /// correction exists.
    Uncorrectable {
        /// Data rows with out-of-tolerance residuals.
        rows: Vec<usize>,
        /// Data columns with out-of-tolerance residuals.
        cols: Vec<usize>,
    },
}

/// Augments `a` with a column-checksum row and `b` with a row-checksum
/// column, both placed at index `n` of a `total × total` matrix (pad
/// rows/columns beyond `n` are zero).
///
/// # Panics
/// Panics unless `a` and `b` are square of the same order `n` and
/// `total > n`.
pub fn augment(a: &Matrix, b: &Matrix, total: usize) -> (Matrix, Matrix) {
    let n = a.rows();
    assert!(
        a.cols() == n && b.rows() == n && b.cols() == n,
        "augment: inputs must be square matrices of equal order"
    );
    assert!(
        total > n,
        "augment: need at least one extra row/column for the checksums"
    );
    let mut aa = Matrix::zeros(total, total);
    let mut bb = Matrix::zeros(total, total);
    for i in 0..n {
        for j in 0..n {
            aa[(i, j)] = a[(i, j)];
            bb[(i, j)] = b[(i, j)];
        }
    }
    for j in 0..n {
        let mut col_sum = 0.0;
        for i in 0..n {
            col_sum += a[(i, j)];
        }
        aa[(n, j)] = col_sum;
    }
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            row_sum += b[(i, j)];
        }
        bb[(i, n)] = row_sum;
    }
    (aa, bb)
}

/// Extracts the top-left `n × n` data block of an augmented product.
///
/// # Panics
/// Panics if `cf` is smaller than `n` in either dimension.
pub fn strip(cf: &Matrix, n: usize) -> Matrix {
    assert!(
        cf.rows() >= n && cf.cols() >= n,
        "strip: augmented product smaller than the data order"
    );
    cf.block(0, 0, n, n)
}

/// The checksum residuals of an augmented product whose checksum
/// row/column sit at index `n`: for each row `i ≠ n`,
/// `rowres[i] = Σ_{j≠n} cf[i][j] − cf[i][n]`, and for each column
/// `j ≠ n`, `colres[j] = Σ_{i≠n} cf[i][j] − cf[n][j]`. Entries `n` of
/// both vectors are zero by definition. A consistent product has all
/// residuals zero (up to accumulated roundoff).
///
/// # Panics
/// Panics unless `cf` is square and strictly larger than `n`.
pub fn residuals(cf: &Matrix, n: usize) -> (Vec<f64>, Vec<f64>) {
    let total = cf.rows();
    assert!(
        cf.cols() == total && total > n,
        "residuals: augmented product must be square and larger than n"
    );
    let mut rowres = vec![0.0; total];
    let mut colres = vec![0.0; total];
    for i in 0..total {
        if i == n {
            continue;
        }
        let mut sum = 0.0;
        for j in 0..total {
            if j != n {
                sum += cf[(i, j)];
            }
        }
        rowres[i] = sum - cf[(i, n)];
    }
    for j in 0..total {
        if j == n {
            continue;
        }
        let mut sum = 0.0;
        for i in 0..total {
            if i != n {
                sum += cf[(i, j)];
            }
        }
        colres[j] = sum - cf[(n, j)];
    }
    (rowres, colres)
}

/// A residual tolerance scaled to the product's magnitude: exact-zero
/// checking for small integer data would be defeated by roundoff on real
/// data, so callers without a better bound use
/// `1e-7 · max(1, max|cf|)` — far above accumulated `f64` roundoff for
/// any order this workspace simulates, far below any corruption worth
/// injecting.
pub fn default_tolerance(cf: &Matrix) -> f64 {
    let max_abs = cf
        .as_slice()
        .iter()
        .fold(0.0f64, |acc, &x| acc.max(x.abs()));
    1e-7 * max_abs.max(1.0)
}

/// Verifies an augmented product in place and corrects any single-fault
/// error pattern the residuals can localize (see the module docs and
/// DESIGN.md §12 for the case analysis). Residuals with magnitude at
/// most `tol` count as zero.
///
/// Correction only applies fixes the residuals *localize*: a single bad
/// row whose damaged columns are flagged (a smeared product row), its
/// mirror image (a smeared column), and — as a follow-up pass only —
/// the checksum-row/column collateral of a fault already pinned to a
/// data row or column.
///
/// One-sided patterns seen on the FIRST pass are ambiguous and reported
/// [`Verdict::Uncorrectable`]: bad columns with every row
/// self-consistent is *either* a damaged checksum row (data intact)
/// *or* a corrupted in-flight `A` word whose copies reached every block
/// column — the damaged row then carries a matching wrong checksum
/// entry and is invisible to row residuals. The mirror pattern
/// confounds checksum-column damage with a propagated `B` corruption.
/// Guessing wrong would certify a wrong product, so both defer to the
/// caller's rerun path. Likewise anything implicating two rows *and*
/// two columns (multi-fault). The matrix is left with whatever partial
/// fixes were applied; callers re-run rather than trust it.
///
/// Every verdict additionally requires the checksum row and column to
/// be *internally* consistent — their sums over data entries must
/// reproduce the grand-total entry at `(n, n)`. A propagated
/// corruption that reaches a checksum-row product entry can otherwise
/// forge a correctable-looking one-row/one-column signature and pull
/// the "correction" toward the damaged reference. Inconsistent
/// checksums always defer to the rerun path, including damage confined
/// to the (stripped, otherwise harmless) checksum corner.
pub fn verify_and_correct(cf: &mut Matrix, n: usize, tol: f64) -> Verdict {
    const MAX_PASSES: usize = 4;
    // A residual poisoned to NaN (e.g. a bit flip in an exponent field
    // turning a payload word non-finite) fails every ordered comparison,
    // so `abs() > tol` alone would wave it through as consistent:
    // anything not provably within tolerance — including NaN — is
    // suspect.
    let suspect = |r: f64| r.abs() > tol || r.is_nan();
    let mut fixes: Vec<(usize, usize)> = Vec::new();
    // Data row/column a previous pass attributed the fault to; unlocks
    // the checksum-entry follow-up fix for that row/column only.
    let mut patched_row: Option<usize> = None;
    let mut patched_col: Option<usize> = None;
    for _ in 0..MAX_PASSES {
        let (rowres, colres) = residuals(cf, n);
        let bad_rows: Vec<usize> = (0..cf.rows())
            .filter(|&i| i != n && suspect(rowres[i]))
            .collect();
        let bad_cols: Vec<usize> = (0..cf.cols())
            .filter(|&j| j != n && suspect(colres[j]))
            .collect();
        match (bad_rows.as_slice(), bad_cols.as_slice()) {
            ([], []) => {
                // The data residuals are consistent — but a propagated
                // corruption that reached a *checksum-row* product entry
                // forges this state: correcting a data column against
                // its damaged checksum reference zeroes the residuals
                // while leaving the data wrong (a chaos-campaign find,
                // shrunk to a single in-flight bit flip on a broadcast
                // edge). The checksum row and column must therefore be
                // internally consistent themselves — their sums over
                // data entries must reproduce the grand total at
                // `(n, n)` — before any verdict is trusted. Damage
                // confined to the (stripped) checksum corner also lands
                // here and defers to a rerun rather than guessing.
                let total = cf.rows();
                let mut rown = -cf[(n, n)];
                let mut coln = -cf[(n, n)];
                for k in 0..total {
                    if k != n {
                        rown += cf[(n, k)];
                        coln += cf[(k, n)];
                    }
                }
                if suspect(rown) || suspect(coln) {
                    return Verdict::Uncorrectable {
                        rows: vec![n],
                        cols: vec![n],
                    };
                }
                return if fixes.is_empty() {
                    Verdict::Clean
                } else {
                    Verdict::Corrected { fixes }
                };
            }
            // One bad data row: errors live in row i0; each implicated
            // column's residual is exactly that entry's error.
            ([i0], cols @ [_, ..]) => {
                for &j in cols {
                    cf[(*i0, j)] -= colres[j];
                    fixes.push((*i0, j));
                }
                patched_row = Some(*i0);
            }
            // One bad data column, several bad rows: mirror image (a
            // corrupted B word smears one column).
            (rows @ [_, _, ..], [j0]) => {
                for &i in rows {
                    cf[(i, *j0)] -= rowres[i];
                    fixes.push((i, *j0));
                }
                patched_col = Some(*j0);
            }
            // Residue of a fault already pinned to this data row: the
            // same corruption also reached the row's checksum-column
            // entry. Safe to repair under the single-fault assumption.
            ([i0], []) if patched_row == Some(*i0) => {
                cf[(*i0, n)] += rowres[*i0];
                fixes.push((*i0, n));
            }
            ([], [j0]) if patched_col == Some(*j0) => {
                cf[(n, *j0)] += colres[*j0];
                fixes.push((n, *j0));
            }
            // Everything else: multi-fault, or a one-sided first-pass
            // pattern that confounds checksum damage with propagated
            // input corruption (see the doc comment).
            (rows, cols) => {
                return Verdict::Uncorrectable {
                    rows: rows.to_vec(),
                    cols: cols.to_vec(),
                };
            }
        }
    }
    // The pass budget ran out without reaching consistency.
    let (rowres, colres) = residuals(cf, n);
    Verdict::Uncorrectable {
        rows: (0..cf.rows())
            .filter(|&i| i != n && suspect(rowres[i]))
            .collect(),
        cols: (0..cf.cols())
            .filter(|&j| j != n && suspect(colres[j]))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::reference;

    fn ints(n: usize, salt: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| ((r * 7 + c * 3 + salt) % 5) as f64 - 2.0)
    }

    fn augmented_product(n: usize, total: usize) -> (Matrix, Matrix) {
        let (a, b) = (ints(n, 0), ints(n, 1));
        let (aa, bb) = augment(&a, &b, total);
        (reference(&aa, &bb), reference(&a, &b))
    }

    #[test]
    fn clean_product_has_zero_residuals_and_strips_exactly() {
        let (cf, c) = augmented_product(6, 8);
        let (rowres, colres) = residuals(&cf, 6);
        assert!(rowres.iter().all(|&x| x == 0.0), "{rowres:?}");
        assert!(colres.iter().all(|&x| x == 0.0), "{colres:?}");
        let mut cf = cf;
        assert_eq!(verify_and_correct(&mut cf, 6, 0.0), Verdict::Clean);
        assert_eq!(strip(&cf, 6), c);
    }

    #[test]
    fn single_entry_error_is_located_and_corrected_bitwise() {
        let (mut cf, c) = augmented_product(6, 8);
        cf[(2, 4)] += 1000.0;
        let verdict = verify_and_correct(&mut cf, 6, 0.0);
        assert_eq!(
            verdict,
            Verdict::Corrected {
                fixes: vec![(2, 4)]
            }
        );
        assert_eq!(strip(&cf, 6), c, "bitwise equality after correction");
    }

    #[test]
    fn forged_correction_against_damaged_checksum_row_is_refused() {
        // One propagated corruption can damage a data entry AND the
        // same column's checksum-row entry (a broadcast subtree covers
        // both consumers). The column residual then mixes the two
        // errors, the signature looks like a plain single-entry fix,
        // and "correcting" against the damaged reference would certify
        // a wrong product. The checksum row's internal inconsistency is
        // the tell.
        let (mut cf, _) = augmented_product(6, 8);
        cf[(2, 2)] += 2.0; // data damage
        cf[(6, 2)] += 5.0; // its column's checksum-row entry, damaged too
        assert!(matches!(
            verify_and_correct(&mut cf, 6, 1e-9),
            Verdict::Uncorrectable { .. }
        ));
    }

    #[test]
    fn checksum_corner_damage_defers_instead_of_certifying() {
        // Damage confined to the grand-total corner never touches the
        // stripped product, but a Clean verdict would rest on a
        // reference known to be damaged; verification defers.
        let (mut cf, _) = augmented_product(6, 8);
        cf[(6, 6)] -= 3.0;
        assert_eq!(
            verify_and_correct(&mut cf, 6, 1e-9),
            Verdict::Uncorrectable {
                rows: vec![6],
                cols: vec![6]
            }
        );
    }

    #[test]
    fn non_finite_damage_is_flagged_never_certified_clean() {
        // NaN fails every ordered comparison, so a `residual > tol`
        // suspect filter would wave NaN damage through as consistent.
        // The chaos campaign's bit-flip corruptions can land in an
        // exponent field and produce exactly this.
        let (mut cf, _) = augmented_product(6, 8);
        cf[(2, 3)] = f64::NAN;
        match verify_and_correct(&mut cf, 6, 1e-9) {
            Verdict::Clean => panic!("NaN damage certified clean"),
            Verdict::Corrected { .. } => {
                panic!("NaN damage cannot be corrected by subtracting NaN residuals")
            }
            Verdict::Uncorrectable { rows, cols } => {
                assert_eq!(rows, vec![2]);
                assert_eq!(cols, vec![3]);
            }
        }
    }

    #[test]
    fn smeared_row_error_is_corrected_entrywise() {
        // A corrupted A word smears one row of C, checksum column
        // included — the composite pattern the pass loop exists for.
        let (mut cf, c) = augmented_product(6, 8);
        for j in [0, 3, 5] {
            cf[(1, j)] += 64.0;
        }
        cf[(1, 6)] += 64.0; // its checksum-column entry, too
        let verdict = verify_and_correct(&mut cf, 6, 0.0);
        match verdict {
            Verdict::Corrected { ref fixes } => {
                assert!(fixes.iter().all(|&(i, _)| i == 1), "{fixes:?}")
            }
            other => panic!("expected Corrected, got {other:?}"),
        }
        assert_eq!(strip(&cf, 6), c);
    }

    #[test]
    fn smeared_column_error_is_corrected_entrywise() {
        let (mut cf, c) = augmented_product(6, 8);
        for i in [0, 2, 4, 5] {
            cf[(i, 3)] -= 7.0;
        }
        let verdict = verify_and_correct(&mut cf, 6, 0.0);
        match verdict {
            Verdict::Corrected { ref fixes } => {
                assert!(fixes.iter().all(|&(_, j)| j == 3), "{fixes:?}")
            }
            other => panic!("expected Corrected, got {other:?}"),
        }
        assert_eq!(strip(&cf, 6), c);
    }

    #[test]
    fn one_sided_patterns_defer_to_rerun() {
        // Damage confined to the checksum row looks identical to a
        // propagated input-A corruption (which hides its row by also
        // falsifying that row's checksum entry), so verification
        // refuses to guess. The data happens to be intact here, but the
        // verdict must not claim so.
        let (mut cf, c) = augmented_product(6, 8);
        cf[(6, 2)] += 5.0; // checksum row
        assert!(matches!(
            verify_and_correct(&mut cf, 6, 0.0),
            Verdict::Uncorrectable { .. }
        ));
        assert_eq!(strip(&cf, 6), c);

        // Mirror ambiguity: checksum-column damage vs a propagated
        // input-B corruption.
        let (mut cf, c) = augmented_product(6, 8);
        cf[(4, 6)] -= 3.0; // checksum column
        assert!(matches!(
            verify_and_correct(&mut cf, 6, 0.0),
            Verdict::Uncorrectable { .. }
        ));
        assert_eq!(strip(&cf, 6), c);

        // A self-consistently smeared row — a corrupted A word whose
        // copies reached every block column — is detected (columns
        // flag) but cannot be located.
        let (mut cf, _) = augmented_product(6, 8);
        for j in 0..7 {
            cf[(3, j)] += 2.0 * (7 - j) as f64; // includes checksum col
        }
        cf[(3, 6)] = {
            let sum: f64 = (0..6).map(|j| cf[(3, j)]).sum();
            sum
        };
        assert!(matches!(
            verify_and_correct(&mut cf, 6, 0.0),
            Verdict::Uncorrectable { .. }
        ));
    }

    #[test]
    fn double_fault_in_distinct_rows_and_columns_is_uncorrectable() {
        let (mut cf, _) = augmented_product(6, 8);
        cf[(1, 2)] += 10.0;
        cf[(3, 4)] += 10.0;
        match verify_and_correct(&mut cf, 6, 0.0) {
            Verdict::Uncorrectable { rows, cols } => {
                assert_eq!(rows, vec![1, 3]);
                assert_eq!(cols, vec![2, 4]);
            }
            other => panic!("expected Uncorrectable, got {other:?}"),
        }
    }

    #[test]
    fn pad_region_stays_zero_through_the_product() {
        let (cf, _) = augmented_product(5, 8);
        for i in 0..8 {
            for j in 6..8 {
                assert_eq!(cf[(i, j)], 0.0);
                assert_eq!(cf[(j, i)], 0.0);
            }
        }
    }
}
