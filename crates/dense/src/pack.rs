//! Panel packing for the blocked GEMM path.
//!
//! The packed kernel (see [`crate::gemm`]) never reads `A` or `B`
//! directly in its inner loops. Each `mc × kc` block of `A` and
//! `kc × nc` block of `B` is first copied into a contiguous scratch
//! buffer laid out exactly in the order the microkernel consumes it:
//!
//! ```text
//! A block (mc × kc)  →  ⌈mc/MR⌉ row panels, each kc steps of MR values:
//!     ap[panel][l*MR + i] = A[ic + panel*MR + i][pc + l]
//! B block (kc × nc)  →  ⌈nc/NR⌉ column panels, each kc steps of NR values:
//!     bp[panel][l*NR + j] = B[pc + l][jc + panel*NR + j]
//! ```
//!
//! Ragged edges are **zero-padded** to full `MR`/`NR` width, so the
//! microkernel always executes a full register tile and only the
//! write-back is masked. Every element of the destination slice is
//! written (padding included), which is what lets the scratch buffers
//! from [`crate::pool::take_scratch`] carry unspecified contents.

use crate::microkernel::{MR, NR};
use crate::Matrix;

/// Packed length of an `mcw × kcw` block of `A` (rows padded to `MR`).
#[inline]
pub fn packed_a_len(mcw: usize, kcw: usize) -> usize {
    mcw.div_ceil(MR) * MR * kcw
}

/// Packed length of a `kcw × ncw` block of `B` (columns padded to `NR`).
#[inline]
pub fn packed_b_len(kcw: usize, ncw: usize) -> usize {
    ncw.div_ceil(NR) * NR * kcw
}

/// Packs the `mcw × kcw` block of `a` with top-left `(ic, pc)` into
/// MR-row panels (layout in the module docs). `ap` must be exactly
/// [`packed_a_len`] long; every element is written.
pub fn pack_a(a: &Matrix, ic: usize, pc: usize, mcw: usize, kcw: usize, ap: &mut [f64]) {
    assert_eq!(ap.len(), packed_a_len(mcw, kcw), "packed A size mismatch");
    let panels = mcw.div_ceil(MR);
    for panel in 0..panels {
        let r0 = panel * MR;
        let live = MR.min(mcw - r0);
        let dst = &mut ap[panel * MR * kcw..(panel + 1) * MR * kcw];
        if live == MR {
            // Full panel: interleave MR source rows, stride-1 reads.
            let rows: [&[f64]; MR] = std::array::from_fn(|i| &a.row(ic + r0 + i)[pc..pc + kcw]);
            for (l, out) in dst.chunks_exact_mut(MR).enumerate() {
                for i in 0..MR {
                    out[i] = rows[i][l];
                }
            }
        } else {
            for (l, out) in dst.chunks_exact_mut(MR).enumerate() {
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = if i < live {
                        a[(ic + r0 + i, pc + l)]
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Packs the `kcw × ncw` block of `b` with top-left `(pc, jc)` into
/// NR-column panels (layout in the module docs). `bp` must be exactly
/// [`packed_b_len`] long; every element is written.
pub fn pack_b(b: &Matrix, pc: usize, jc: usize, kcw: usize, ncw: usize, bp: &mut [f64]) {
    assert_eq!(bp.len(), packed_b_len(kcw, ncw), "packed B size mismatch");
    let panels = ncw.div_ceil(NR);
    for panel in 0..panels {
        let c0 = panel * NR;
        let live = NR.min(ncw - c0);
        let dst = &mut bp[panel * NR * kcw..(panel + 1) * NR * kcw];
        for (l, out) in dst.chunks_exact_mut(NR).enumerate() {
            let src = &b.row(pc + l)[jc + c0..jc + c0 + live];
            out[..live].copy_from_slice(src);
            out[live..].fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_layout_and_padding() {
        let a = Matrix::from_fn(5, 3, |r, c| (r * 10 + c) as f64);
        let (mcw, kcw) = (5, 3);
        let mut ap = vec![-1.0; packed_a_len(mcw, kcw)];
        pack_a(&a, 0, 0, mcw, kcw, &mut ap);
        // First panel, step l=1 holds column 1 of rows 0..4.
        assert_eq!(&ap[MR..2 * MR], &[1.0, 11.0, 21.0, 31.0]);
        // Second panel holds row 4 then zero padding.
        let p2 = &ap[MR * kcw..];
        assert_eq!(p2[0], 40.0);
        assert_eq!(&p2[1..MR], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_a_respects_block_origin() {
        let a = Matrix::from_fn(8, 8, |r, c| (r * 8 + c) as f64);
        let mut ap = vec![0.0; packed_a_len(4, 2)];
        pack_a(&a, 2, 3, 4, 2, &mut ap);
        // l = 0: column 3 of rows 2..6.
        assert_eq!(&ap[..MR], &[19.0, 27.0, 35.0, 43.0]);
    }

    #[test]
    fn pack_b_layout_and_padding() {
        let b = Matrix::from_fn(2, 10, |r, c| (r * 100 + c) as f64);
        let (kcw, ncw) = (2, 10);
        let mut bp = vec![-1.0; packed_b_len(kcw, ncw)];
        pack_b(&b, 0, 0, kcw, ncw, &mut bp);
        // First panel, step l=0: columns 0..8 of row 0.
        assert_eq!(&bp[..NR], &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        // Second panel: two live columns then zeros.
        let p2 = &bp[NR * kcw..];
        assert_eq!(&p2[..3], &[8.0, 9.0, 0.0]);
        assert_eq!(&p2[NR..NR + 3], &[108.0, 109.0, 0.0]);
    }

    #[test]
    fn packed_lengths_round_up() {
        assert_eq!(packed_a_len(4, 7), 4 * 7);
        assert_eq!(packed_a_len(5, 7), 8 * 7);
        assert_eq!(packed_b_len(3, 8), 8 * 3);
        assert_eq!(packed_b_len(3, 9), 16 * 3);
    }
}
