//! Panel packing for the blocked GEMM path.
//!
//! The packed kernel (see [`crate::gemm`]) never reads `A` or `B`
//! directly in its inner loops. Each `mc × kc` block of `A` and
//! `kc × nc` block of `B` is first copied into a contiguous scratch
//! buffer laid out exactly in the order the microkernel consumes it,
//! where `mr × nr` is the register-tile shape of the *active*
//! microkernel ([`crate::microkernel::MicrokernelImpl`] — the packers
//! take the lane widths as parameters so the same code serves the
//! scalar `4×8` and the AVX2 `6×8` tiles):
//!
//! ```text
//! A block (mc × kc)  →  ⌈mc/mr⌉ row panels, each kc steps of mr values:
//!     ap[panel][l*mr + i] = A[ic + panel*mr + i][pc + l]
//! B block (kc × nc)  →  ⌈nc/nr⌉ column panels, each kc steps of nr values:
//!     bp[panel][l*nr + j] = B[pc + l][jc + panel*nr + j]
//! ```
//!
//! Ragged edges are **zero-padded** to full `mr`/`nr` width, so the
//! microkernel always executes a full register tile and only the
//! write-back is masked. Every element of the destination slice is
//! written (padding included), which is what lets the scratch buffers
//! from [`crate::pool::take_scratch`] carry unspecified contents.
//!
//! Alignment: panels are stored at `f64` (8-byte) granularity and the
//! SIMD kernel reads them with unaligned loads (`_mm256_loadu_pd`),
//! which cost the same as aligned loads on every AVX2-era core — so no
//! over-alignment of the scratch buffers is needed, and a panel stride
//! of `nr·kc` keeps successive `k` steps on one or two cache lines.
//!
//! [`pack_a_panel`]/[`pack_b_panel`] expose single-panel granularity so
//! the parallel driver can fan the packing itself out across the pool
//! (each panel has exactly one writer — same determinism argument as
//! the compute tiles).

use crate::microkernel::MAX_MR;
use crate::Matrix;

/// Packed length of an `mcw × kcw` block of `A` (rows padded to `mr`).
#[inline]
pub fn packed_a_len(mcw: usize, kcw: usize, mr: usize) -> usize {
    mcw.div_ceil(mr) * mr * kcw
}

/// Packed length of a `kcw × ncw` block of `B` (columns padded to `nr`).
#[inline]
pub fn packed_b_len(kcw: usize, ncw: usize, nr: usize) -> usize {
    ncw.div_ceil(nr) * nr * kcw
}

/// Packs one `mr`-row panel of `a`: rows `[row0, row0 + live)` and
/// columns `[pc, pc + kcw)`, interleaved k-major with rows `live..mr`
/// zero-padded. `dst` must be exactly `mr * kcw` long; every element is
/// written.
///
/// # Panics
/// Panics if `live` is `0`, exceeds `mr`, or `mr` exceeds [`MAX_MR`].
pub fn pack_a_panel(
    a: &Matrix,
    row0: usize,
    pc: usize,
    live: usize,
    kcw: usize,
    mr: usize,
    dst: &mut [f64],
) {
    assert!(0 < live && live <= mr && mr <= MAX_MR, "bad A panel shape");
    assert_eq!(dst.len(), mr * kcw, "packed A panel size mismatch");
    // Borrow the live source rows once; stride-1 reads in the k loop.
    let mut rows: [&[f64]; MAX_MR] = [&[]; MAX_MR];
    for (i, row) in rows.iter_mut().take(live).enumerate() {
        *row = &a.row(row0 + i)[pc..pc + kcw];
    }
    for (l, out) in dst.chunks_exact_mut(mr).enumerate() {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = if i < live { rows[i][l] } else { 0.0 };
        }
    }
}

/// Packs one `nr`-column panel of `b`: rows `[pc, pc + kcw)` and columns
/// `[col0, col0 + live)`, k-major with columns `live..nr` zero-padded.
/// `dst` must be exactly `nr * kcw` long; every element is written.
///
/// # Panics
/// Panics if `live` is `0` or exceeds `nr`.
pub fn pack_b_panel(
    b: &Matrix,
    pc: usize,
    col0: usize,
    live: usize,
    kcw: usize,
    nr: usize,
    dst: &mut [f64],
) {
    assert!(0 < live && live <= nr, "bad B panel shape");
    assert_eq!(dst.len(), nr * kcw, "packed B panel size mismatch");
    for (l, out) in dst.chunks_exact_mut(nr).enumerate() {
        let src = &b.row(pc + l)[col0..col0 + live];
        out[..live].copy_from_slice(src);
        out[live..].fill(0.0);
    }
}

/// Packs the `mcw × kcw` block of `a` with top-left `(ic, pc)` into
/// `mr`-row panels (layout in the module docs). `ap` must be exactly
/// [`packed_a_len`] long; every element is written.
pub fn pack_a(a: &Matrix, ic: usize, pc: usize, mcw: usize, kcw: usize, mr: usize, ap: &mut [f64]) {
    assert_eq!(
        ap.len(),
        packed_a_len(mcw, kcw, mr),
        "packed A size mismatch"
    );
    let panels = mcw.div_ceil(mr);
    for panel in 0..panels {
        let r0 = panel * mr;
        let live = mr.min(mcw - r0);
        let dst = &mut ap[panel * mr * kcw..(panel + 1) * mr * kcw];
        pack_a_panel(a, ic + r0, pc, live, kcw, mr, dst);
    }
}

/// Packs the `kcw × ncw` block of `b` with top-left `(pc, jc)` into
/// `nr`-column panels (layout in the module docs). `bp` must be exactly
/// [`packed_b_len`] long; every element is written.
pub fn pack_b(b: &Matrix, pc: usize, jc: usize, kcw: usize, ncw: usize, nr: usize, bp: &mut [f64]) {
    assert_eq!(
        bp.len(),
        packed_b_len(kcw, ncw, nr),
        "packed B size mismatch"
    );
    let panels = ncw.div_ceil(nr);
    for panel in 0..panels {
        let c0 = panel * nr;
        let live = nr.min(ncw - c0);
        let dst = &mut bp[panel * nr * kcw..(panel + 1) * nr * kcw];
        pack_b_panel(b, pc, jc + c0, live, kcw, nr, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microkernel::{SCALAR_MR, SCALAR_NR};

    const MR: usize = SCALAR_MR;
    const NR: usize = SCALAR_NR;

    #[test]
    fn pack_a_layout_and_padding() {
        let a = Matrix::from_fn(5, 3, |r, c| (r * 10 + c) as f64);
        let (mcw, kcw) = (5, 3);
        let mut ap = vec![-1.0; packed_a_len(mcw, kcw, MR)];
        pack_a(&a, 0, 0, mcw, kcw, MR, &mut ap);
        // First panel, step l=1 holds column 1 of rows 0..4.
        assert_eq!(&ap[MR..2 * MR], &[1.0, 11.0, 21.0, 31.0]);
        // Second panel holds row 4 then zero padding.
        let p2 = &ap[MR * kcw..];
        assert_eq!(p2[0], 40.0);
        assert_eq!(&p2[1..MR], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_a_respects_block_origin() {
        let a = Matrix::from_fn(8, 8, |r, c| (r * 8 + c) as f64);
        let mut ap = vec![0.0; packed_a_len(4, 2, MR)];
        pack_a(&a, 2, 3, 4, 2, MR, &mut ap);
        // l = 0: column 3 of rows 2..6.
        assert_eq!(&ap[..MR], &[19.0, 27.0, 35.0, 43.0]);
    }

    #[test]
    fn pack_b_layout_and_padding() {
        let b = Matrix::from_fn(2, 10, |r, c| (r * 100 + c) as f64);
        let (kcw, ncw) = (2, 10);
        let mut bp = vec![-1.0; packed_b_len(kcw, ncw, NR)];
        pack_b(&b, 0, 0, kcw, ncw, NR, &mut bp);
        // First panel, step l=0: columns 0..8 of row 0.
        assert_eq!(&bp[..NR], &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        // Second panel: two live columns then zeros.
        let p2 = &bp[NR * kcw..];
        assert_eq!(&p2[..3], &[8.0, 9.0, 0.0]);
        assert_eq!(&p2[NR..NR + 3], &[108.0, 109.0, 0.0]);
    }

    #[test]
    fn packed_lengths_round_up() {
        assert_eq!(packed_a_len(4, 7, MR), 4 * 7);
        assert_eq!(packed_a_len(5, 7, MR), 8 * 7);
        assert_eq!(packed_b_len(3, 8, NR), 8 * 3);
        assert_eq!(packed_b_len(3, 9, NR), 16 * 3);
        // The 6-row AVX2 tile rounds to multiples of 6.
        assert_eq!(packed_a_len(7, 2, 6), 12 * 2);
    }

    #[test]
    fn wide_tile_panels_match_block_packing() {
        // Packing a block through pack_a must equal packing its panels
        // individually — the contract the parallel driver relies on.
        let a = Matrix::random(13, 9, 5);
        let (mr, kcw) = (6, 9);
        let mut whole = vec![0.0; packed_a_len(13, kcw, mr)];
        pack_a(&a, 0, 0, 13, kcw, mr, &mut whole);
        for panel in 0..13usize.div_ceil(mr) {
            let live = mr.min(13 - panel * mr);
            let mut one = vec![0.0; mr * kcw];
            pack_a_panel(&a, panel * mr, 0, live, kcw, mr, &mut one);
            assert_eq!(&whole[panel * mr * kcw..(panel + 1) * mr * kcw], &one[..]);
        }
        let b = Matrix::random(9, 21, 6);
        let nr = 8;
        let mut whole = vec![0.0; packed_b_len(9, 21, nr)];
        pack_b(&b, 0, 0, 9, 21, nr, &mut whole);
        for panel in 0..21usize.div_ceil(nr) {
            let live = nr.min(21 - panel * nr);
            let mut one = vec![0.0; nr * 9];
            pack_b_panel(&b, 0, panel * nr, live, 9, nr, &mut one);
            assert_eq!(&whole[panel * nr * 9..(panel + 1) * nr * 9], &one[..]);
        }
    }
}
