//! The block layouts the paper's algorithms assume.
//!
//! * [`square`] — the `√p × √p` (or `∛p × ∛p`) block partition of
//!   Figure 1, used by Simple, Cannon, HJE, DNS, Berntsen and the 3-D
//!   Diagonal algorithm.
//! * [`row_group`] / [`col_group`] — contiguous groups of rows/columns,
//!   used by the 2-D Diagonal and Berntsen splits and for the `l`-th
//!   sub-groups exchanged inside the 3-D All algorithms.
//! * [`wide`] / [`tall`] — the `∛p × p^{2/3}` partition of matrix A
//!   (Figure 8) and the `p^{2/3} × ∛p` partition of matrix B (Figure 9)
//!   used by 3-D All_Trans / 3-D All, with `f(i, j) = i·∛p + j`.

use crate::Matrix;

/// The `(i, j)` block of the `q × q` square partition (Figure 1).
///
/// # Panics
/// Panics if the matrix dimensions are not divisible by `q`.
pub fn square(m: &Matrix, q: usize, i: usize, j: usize) -> Matrix {
    assert!(
        m.rows() % q == 0 && m.cols() % q == 0,
        "matrix not divisible into {q}x{q} blocks"
    );
    let (br, bc) = (m.rows() / q, m.cols() / q);
    m.block(i * br, j * bc, br, bc)
}

/// Assembles a matrix from its `q × q` square blocks via a getter.
pub fn assemble_square(n: usize, q: usize, mut get: impl FnMut(usize, usize) -> Matrix) -> Matrix {
    assert_eq!(n % q, 0);
    let b = n / q;
    let mut out = Matrix::zeros(n, n);
    for i in 0..q {
        for j in 0..q {
            let blk = get(i, j);
            assert_eq!(
                (blk.rows(), blk.cols()),
                (b, b),
                "block ({i},{j}) has wrong shape"
            );
            out.paste(i * b, j * b, &blk);
        }
    }
    out
}

/// The `i`-th of `g` contiguous groups of rows.
pub fn row_group(m: &Matrix, g: usize, i: usize) -> Matrix {
    assert_eq!(m.rows() % g, 0, "rows not divisible into {g} groups");
    let h = m.rows() / g;
    m.block(i * h, 0, h, m.cols())
}

/// The `j`-th of `g` contiguous groups of columns.
pub fn col_group(m: &Matrix, g: usize, j: usize) -> Matrix {
    assert_eq!(m.cols() % g, 0, "cols not divisible into {g} groups");
    let w = m.cols() / g;
    m.block(0, j * w, m.rows(), w)
}

/// Stacks `g` row groups back into a full matrix.
pub fn stack_rows(groups: &[Matrix]) -> Matrix {
    assert!(!groups.is_empty());
    let cols = groups[0].cols();
    let rows: usize = groups.iter().map(Matrix::rows).sum();
    let mut out = Matrix::zeros(rows, cols);
    let mut r = 0;
    for g in groups {
        assert_eq!(g.cols(), cols);
        out.paste(r, 0, g);
        r += g.rows();
    }
    out
}

/// Concatenates `g` column groups back into a full matrix.
pub fn concat_cols(groups: &[Matrix]) -> Matrix {
    assert!(!groups.is_empty());
    let rows = groups[0].rows();
    let cols: usize = groups.iter().map(Matrix::cols).sum();
    let mut out = Matrix::zeros(rows, cols);
    let mut c = 0;
    for g in groups {
        assert_eq!(g.rows(), rows);
        out.paste(0, c, g);
        c += g.cols();
    }
    out
}

/// The paper's index map `f(i, j) = i·q + j` (with `q = ∛p`).
#[inline]
pub fn f_index(q: usize, i: usize, j: usize) -> usize {
    i * q + j
}

/// Block `A_{k, f}` of the Figure 8 partition: rows split into `q` groups,
/// columns into `q²` groups (block shape `n/q × n/q²`).
pub fn wide(m: &Matrix, q: usize, k: usize, f: usize) -> Matrix {
    assert!(
        m.rows() % q == 0 && m.cols() % (q * q) == 0,
        "matrix not divisible for Figure 8 layout"
    );
    let (br, bc) = (m.rows() / q, m.cols() / (q * q));
    m.block(k * br, f * bc, br, bc)
}

/// Block `B_{f, k}` of the Figure 9 partition: rows split into `q²`
/// groups, columns into `q` groups (block shape `n/q² × n/q`).
pub fn tall(m: &Matrix, q: usize, f: usize, k: usize) -> Matrix {
    assert!(
        m.rows() % (q * q) == 0 && m.cols() % q == 0,
        "matrix not divisible for Figure 9 layout"
    );
    let (br, bc) = (m.rows() / (q * q), m.cols() / q);
    m.block(f * br, k * bc, br, bc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_blocks_tile_the_matrix() {
        let n = 12;
        let q = 4;
        let m = Matrix::from_fn(n, n, |r, c| (r * n + c) as f64);
        let back = assemble_square(n, q, |i, j| square(&m, q, i, j));
        assert_eq!(back, m);
    }

    #[test]
    fn square_block_contents() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let blk = square(&m, 2, 1, 0);
        assert_eq!(blk.as_slice(), &[8.0, 9.0, 12.0, 13.0]);
    }

    #[test]
    fn row_col_groups_roundtrip() {
        let m = Matrix::random(8, 6, 5);
        let rows: Vec<Matrix> = (0..4).map(|i| row_group(&m, 4, i)).collect();
        assert_eq!(stack_rows(&rows), m);
        let cols: Vec<Matrix> = (0..3).map(|j| col_group(&m, 3, j)).collect();
        assert_eq!(concat_cols(&cols), m);
    }

    #[test]
    fn wide_tall_tile_the_matrix() {
        let q = 2;
        let n = 8;
        let m = Matrix::from_fn(n, n, |r, c| (r * n + c) as f64);
        // Figure 8: q row groups x q^2 col groups.
        let mut sum = 0.0;
        for k in 0..q {
            for f in 0..q * q {
                let blk = wide(&m, q, k, f);
                assert_eq!((blk.rows(), blk.cols()), (n / q, n / (q * q)));
                sum += blk.as_slice().iter().sum::<f64>();
            }
        }
        assert_eq!(sum, m.as_slice().iter().sum::<f64>());
        // Figure 9: q^2 row groups x q col groups.
        let mut sum_t = 0.0;
        for f in 0..q * q {
            for k in 0..q {
                let blk = tall(&m, q, f, k);
                assert_eq!((blk.rows(), blk.cols()), (n / (q * q), n / q));
                sum_t += blk.as_slice().iter().sum::<f64>();
            }
        }
        assert_eq!(sum_t, sum);
    }

    #[test]
    fn wide_of_a_equals_tall_of_a_transpose() {
        // The 3-D All_Trans initial condition: "the transpose of matrix B
        // is initially identically distributed as matrix A".
        let q = 2;
        let n = 8;
        let m = Matrix::random(n, n, 11);
        let mt = m.transpose();
        for k in 0..q {
            for f in 0..q * q {
                let a = wide(&m, q, k, f);
                let b = tall(&mt, q, f, k);
                assert_eq!(a, b.transpose());
            }
        }
    }

    #[test]
    fn f_index_matches_paper() {
        // Figure 8 for p = 8 (q = 2): columns ordered f(0,0), f(0,1),
        // f(1,0), f(1,1).
        assert_eq!(f_index(2, 0, 0), 0);
        assert_eq!(f_index(2, 0, 1), 1);
        assert_eq!(f_index(2, 1, 0), 2);
        assert_eq!(f_index(2, 1, 1), 3);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_square_panics() {
        let m = Matrix::zeros(5, 5);
        let _ = square(&m, 2, 0, 0);
    }
}
