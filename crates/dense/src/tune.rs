//! Blocking-parameter resolution and autotuning for the packed GEMM.
//!
//! The packed kernel's throughput hinges on three cache-blocking
//! parameters: `mc` (rows of `A` per packed block — should sit in L2),
//! `kc` (panel depth — one `kc × nr` B micro-panel plus one `kc × mr` A
//! micro-panel should sit in L1), and `nc` (columns of `B` per macro
//! panel — bounds the packed B working set). Good values are
//! host-specific, so this module provides the three rungs callers fall
//! through:
//!
//! 1. **Explicit** — a nonzero value in [`crate::gemm::Kernel::Packed`]
//!    wins, rounded up to the active microkernel's tile shape.
//! 2. **Tuned** — a tuning file written by `cubemm tune-kernel`
//!    ([`sweep`] + [`Tuning::save`]), looked up at
//!    `$CUBEMM_TUNE_FILE` (or `./cubemm-tune.json`), applied only when
//!    its recorded microkernel matches the active one.
//! 3. **Static defaults** — per-microkernel constants chosen for a
//!    generic ~32 KiB L1 / ≥1 MiB L2 part, so untuned hosts are still
//!    fast.
//!
//! # Determinism caveat
//!
//! `kc` decides where per-block accumulators fold into `C`, so two runs
//! with *different* `kc` produce different low-order bits (see
//! `gemm.rs`). The static defaults therefore share `kc = 256` across
//! every microkernel — untuned hosts agree bitwise whatever impl they
//! dispatch to. A tuned file may pick another `kc` and trade that
//! cross-host reproducibility for speed; deployments that need both pin
//! `kc` explicitly.

use crate::gemm::{gemm_acc_with_microkernel, Kernel, DEFAULT_KC, DEFAULT_MC, DEFAULT_NC};
use crate::microkernel::MicrokernelImpl;
use crate::Matrix;

/// Environment variable naming the tuning file consulted by untuned
/// [`crate::gemm::Kernel::Packed`] runs. Empty or unset falls back to
/// `./cubemm-tune.json`; a missing or mismatched file falls back to the
/// static defaults.
pub const TUNE_FILE_ENV: &str = "CUBEMM_TUNE_FILE";

/// Default tuning-file path when [`TUNE_FILE_ENV`] is unset.
pub const DEFAULT_TUNE_FILE: &str = "cubemm-tune.json";

/// Resolved cache-blocking parameters for one packed multiply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocking {
    /// Rows of `A` per packed block (multiple of the tile's `mr`).
    pub mc: usize,
    /// Depth of each packed panel pair.
    pub kc: usize,
    /// Columns of `B` per macro panel (multiple of the tile's `nr`).
    pub nc: usize,
}

/// The compiled-in blocking defaults for one microkernel. `kc` is
/// shared across impls on purpose — see the module docs.
pub fn static_defaults(mk: MicrokernelImpl) -> Blocking {
    match mk {
        MicrokernelImpl::Scalar => Blocking {
            mc: DEFAULT_MC,
            kc: DEFAULT_KC,
            nc: DEFAULT_NC,
        },
        // The 6×8 FMA tile retires ~2 loads per 12 FMAs, so it tolerates
        // (and profits from) much wider B macro panels.
        MicrokernelImpl::Avx2 => Blocking {
            mc: 96,
            kc: DEFAULT_KC,
            nc: 2048,
        },
    }
}

/// Resolves the caller's (possibly zero) `mc`/`kc`/`nc` requests into
/// concrete blocking for microkernel `mk`: explicit nonzero values win,
/// then the ambient tuning file (if it matches `mk`), then
/// [`static_defaults`]. `mc`/`nc` are rounded up to the tile shape so
/// block boundaries always align with packed panel boundaries.
pub fn resolve(mc: usize, kc: usize, nc: usize, mk: MicrokernelImpl) -> Blocking {
    let d = ambient_tuned(mk).unwrap_or_else(|| static_defaults(mk));
    Blocking {
        mc: pick(mc, d.mc).next_multiple_of(mk.mr()),
        kc: pick(kc, d.kc),
        nc: pick(nc, d.nc).next_multiple_of(mk.nr()),
    }
}

#[inline]
fn pick(requested: usize, fallback: usize) -> usize {
    if requested == 0 {
        fallback.max(1)
    } else {
        requested
    }
}

/// The ambient tuning-file entry for `mk`, if one exists and matches.
/// The file is read once per process (results cached), so `cubemm
/// tune-kernel` writes take effect on the *next* run — fine, since
/// tuning is an offline step.
fn ambient_tuned(mk: MicrokernelImpl) -> Option<Blocking> {
    // Miri runs under strict isolation (no fs, no env-dependent paths
    // worth chasing); static defaults are what we want there anyway.
    #[cfg(miri)]
    {
        let _ = mk;
        None
    }
    #[cfg(not(miri))]
    {
        use std::sync::OnceLock;
        static AMBIENT: OnceLock<Option<Tuning>> = OnceLock::new();
        let tuned = AMBIENT.get_or_init(|| {
            let path = match std::env::var(TUNE_FILE_ENV) {
                Ok(p) if !p.is_empty() => p,
                _ => DEFAULT_TUNE_FILE.to_string(),
            };
            Tuning::load(std::path::Path::new(&path)).ok()
        });
        match tuned {
            Some(t) if t.microkernel == mk.name() => Some(Blocking {
                mc: t.mc,
                kc: t.kc,
                nc: t.nc,
            }),
            _ => None,
        }
    }
}

/// Detected per-core cache sizes, used to prune the sweep space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheInfo {
    /// L1 data cache in bytes.
    pub l1d: usize,
    /// Unified L2 in bytes.
    pub l2: usize,
}

impl CacheInfo {
    /// Conservative fallback when sysfs is unavailable (non-Linux,
    /// containers masking `/sys`): the smallest caches on anything
    /// we'd plausibly run on.
    pub const FALLBACK: CacheInfo = CacheInfo {
        l1d: 32 * 1024,
        l2: 512 * 1024,
    };
}

/// Reads cpu0's cache hierarchy from
/// `/sys/devices/system/cpu/cpu0/cache/index*`, falling back to
/// [`CacheInfo::FALLBACK`] for any level it cannot read.
pub fn detect_caches() -> CacheInfo {
    let mut info = CacheInfo::FALLBACK;
    let base = std::path::Path::new("/sys/devices/system/cpu/cpu0/cache");
    for idx in 0..8 {
        let dir = base.join(format!("index{idx}"));
        let read = |f: &str| std::fs::read_to_string(dir.join(f)).unwrap_or_default();
        let level = read("level");
        let ctype = read("type");
        let Some(size) = parse_cache_size(read("size").trim()) else {
            continue;
        };
        match (level.trim(), ctype.trim()) {
            ("1", "Data") | ("1", "Unified") => info.l1d = size,
            ("2", _) => info.l2 = size,
            _ => {}
        }
    }
    info
}

/// Parses sysfs cache-size strings: `"48K"`, `"2048K"`, `"1M"`, `"36864"`.
fn parse_cache_size(s: &str) -> Option<usize> {
    if s.is_empty() {
        return None;
    }
    let (digits, mult) = match s.as_bytes()[s.len() - 1] {
        b'K' | b'k' => (&s[..s.len() - 1], 1024),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        b'G' | b'g' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok().map(|v| v * mult)
}

/// The candidate blocking grid for one microkernel, pruned against the
/// cache hierarchy: `kc` so one A + one B micro-panel fit L1, `mc` so
/// the packed A block fits comfortably in L2. `full` widens the grid
/// ~4x for overnight tuning.
pub fn candidates(mk: MicrokernelImpl, cache: CacheInfo, full: bool) -> Vec<Blocking> {
    let (mr, nr) = (mk.mr(), mk.nr());
    let kcs: &[usize] = if full {
        &[64, 128, 192, 256, 320, 384, 512]
    } else {
        &[128, 256, 384]
    };
    let mcs: &[usize] = if full {
        &[24, 32, 48, 64, 96, 128, 192, 256]
    } else {
        &[48, 96, 192]
    };
    let ncs: &[usize] = if full {
        &[256, 512, 1024, 2048, 4096]
    } else {
        &[512, 2048]
    };
    let mut out = Vec::new();
    for &kc in kcs {
        // One kc×mr A micro-panel + one kc×nr B micro-panel in L1.
        if kc * (mr + nr) * 8 > cache.l1d {
            continue;
        }
        for &mc in mcs {
            let mc = mc.next_multiple_of(mr);
            // Packed A block in at most half of L2 (room for B stream).
            if mc * kc * 8 > cache.l2 / 2 {
                continue;
            }
            for &nc in ncs {
                let b = Blocking {
                    mc,
                    kc,
                    nc: nc.next_multiple_of(nr),
                };
                if !out.contains(&b) {
                    out.push(b);
                }
            }
        }
    }
    if out.is_empty() {
        // Pathologically small caches reported — still return something.
        out.push(static_defaults(mk));
    }
    out
}

/// One measured point from a [`sweep`].
#[derive(Debug, Clone, Copy)]
pub struct SweepEntry {
    /// The blocking that was timed.
    pub blocking: Blocking,
    /// Best-of-reps throughput at the sweep's problem size.
    pub gflops: f64,
}

/// A persisted tuning result — the winner of a [`sweep`], keyed by the
/// microkernel it was measured with so a file tuned on one host is
/// ignored (not misapplied) on a host that dispatches differently.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuning {
    /// [`MicrokernelImpl::name`] the sweep ran with.
    pub microkernel: String,
    /// Winning rows-of-A block height.
    pub mc: usize,
    /// Winning panel depth.
    pub kc: usize,
    /// Winning macro-panel width.
    pub nc: usize,
    /// Throughput the winner achieved.
    pub gflops: f64,
    /// Problem size (`n × n × n`) the sweep timed.
    pub n: usize,
    /// Thread count the sweep timed with.
    pub threads: usize,
}

impl Tuning {
    /// Serializes to the flat JSON object `cubemm tune-kernel` writes.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"microkernel\": \"{}\",\n  \"mc\": {},\n  \"kc\": {},\n  \"nc\": {},\n  \"gflops\": {:.3},\n  \"n\": {},\n  \"threads\": {}\n}}\n",
            self.microkernel, self.mc, self.kc, self.nc, self.gflops, self.n, self.threads
        )
    }

    /// Parses the flat JSON written by [`Tuning::to_json`]. The dense
    /// crate is dependency-free by policy, so this is a deliberately
    /// minimal field scanner, not a general JSON parser.
    pub fn from_json(s: &str) -> Result<Tuning, String> {
        Ok(Tuning {
            microkernel: json_str(s, "microkernel")?,
            mc: json_usize(s, "mc")?,
            kc: json_usize(s, "kc")?,
            nc: json_usize(s, "nc")?,
            gflops: json_f64(s, "gflops")?,
            n: json_usize(s, "n")?,
            threads: json_usize(s, "threads")?,
        })
    }

    /// Writes the tuning file (pretty flat JSON) to `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads and parses a tuning file.
    pub fn load(path: &std::path::Path) -> Result<Tuning, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Tuning::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn json_raw<'a>(s: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\"");
    let at = s
        .find(&pat)
        .ok_or_else(|| format!("missing field {key:?}"))?;
    let rest = &s[at + pat.len()..];
    let rest = rest
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("malformed field {key:?}"))?
        .trim_start();
    let end = rest
        .find([',', '}', '\n'])
        .ok_or_else(|| format!("unterminated field {key:?}"))?;
    Ok(rest[..end].trim())
}

fn json_str(s: &str, key: &str) -> Result<String, String> {
    let raw = json_raw(s, key)?;
    raw.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

fn json_usize(s: &str, key: &str) -> Result<usize, String> {
    json_raw(s, key)?
        .parse()
        .map_err(|e| format!("field {key:?}: {e}"))
}

fn json_f64(s: &str, key: &str) -> Result<f64, String> {
    json_raw(s, key)?
        .parse()
        .map_err(|e| format!("field {key:?}: {e}"))
}

/// Times every candidate blocking for `mk` on an `n × n × n` product
/// (`reps` timed runs each, best kept) and returns the measured grid,
/// best first. Ties break toward the earlier (smaller-footprint)
/// candidate so output is stable run to run.
pub fn sweep(
    mk: MicrokernelImpl,
    n: usize,
    reps: usize,
    threads: usize,
    full: bool,
) -> Vec<SweepEntry> {
    let cache = detect_caches();
    let grid = candidates(mk, cache, full);
    let a = Matrix::random(n, n, 0xC0FFEE);
    let b = Matrix::random(n, n, 0xBEEF);
    let flops = 2.0 * (n as f64).powi(3);
    let mut entries: Vec<SweepEntry> = Vec::with_capacity(grid.len());
    for bl in grid {
        let kernel = Kernel::Packed {
            mc: bl.mc,
            kc: bl.kc,
            nc: bl.nc,
            threads,
        };
        let mut c = Matrix::zeros(n, n);
        // Untimed warm-up: faults the buffers in, primes the pool.
        gemm_acc_with_microkernel(&mut c, &a, &b, kernel, mk);
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t0 = std::time::Instant::now();
            gemm_acc_with_microkernel(&mut c, &a, &b, kernel, mk);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        entries.push(SweepEntry {
            blocking: bl,
            gflops: flops / best / 1e9,
        });
    }
    // Stable sort: equal-throughput candidates keep grid (footprint)
    // order, so the reported winner is deterministic.
    entries.sort_by(|x, y| y.gflops.total_cmp(&x.gflops));
    entries
}

/// Runs a [`sweep`] and wraps the winner as a persistable [`Tuning`].
pub fn tune(
    mk: MicrokernelImpl,
    n: usize,
    reps: usize,
    threads: usize,
    full: bool,
) -> (Tuning, Vec<SweepEntry>) {
    let entries = sweep(mk, n, reps, threads, full);
    let best = entries[0];
    (
        Tuning {
            microkernel: mk.name().to_string(),
            mc: best.blocking.mc,
            kc: best.blocking.kc,
            nc: best.blocking.nc,
            gflops: best.gflops,
            n,
            threads,
        },
        entries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_values_win_and_round_to_tile() {
        let bl = resolve(50, 33, 70, MicrokernelImpl::Scalar);
        assert_eq!(bl.kc, 33);
        assert_eq!(bl.mc % MicrokernelImpl::Scalar.mr(), 0);
        assert!(bl.mc >= 50);
        assert_eq!(bl.nc % MicrokernelImpl::Scalar.nr(), 0);
        assert!(bl.nc >= 70);
    }

    #[test]
    fn zeros_fall_back_to_defaults() {
        let bl = resolve(0, 0, 0, MicrokernelImpl::Scalar);
        let d = static_defaults(MicrokernelImpl::Scalar);
        // Ambient tuning may overlay, but never with zero/misaligned
        // values; with no tune file present this is exactly the default.
        assert!(bl.mc >= MicrokernelImpl::Scalar.mr());
        assert!(bl.kc >= 1);
        assert!(bl.nc >= MicrokernelImpl::Scalar.nr());
        assert_eq!(d.kc, DEFAULT_KC, "static kc shared across impls");
        assert_eq!(static_defaults(MicrokernelImpl::Avx2).kc, DEFAULT_KC);
    }

    #[test]
    fn cache_size_strings_parse() {
        assert_eq!(parse_cache_size("48K"), Some(48 * 1024));
        assert_eq!(parse_cache_size("2048K"), Some(2048 * 1024));
        assert_eq!(parse_cache_size("1M"), Some(1024 * 1024));
        assert_eq!(parse_cache_size("36864"), Some(36864));
        assert_eq!(parse_cache_size(""), None);
        assert_eq!(parse_cache_size("big"), None);
    }

    #[test]
    fn candidate_grid_is_nonempty_aligned_and_pruned() {
        for mk in [MicrokernelImpl::Scalar, MicrokernelImpl::Avx2] {
            for full in [false, true] {
                let grid = candidates(mk, CacheInfo::FALLBACK, full);
                assert!(!grid.is_empty());
                for bl in &grid {
                    assert_eq!(bl.mc % mk.mr(), 0, "{bl:?}");
                    assert_eq!(bl.nc % mk.nr(), 0, "{bl:?}");
                    assert!(
                        bl.kc * (mk.mr() + mk.nr()) * 8 <= CacheInfo::FALLBACK.l1d,
                        "{bl:?} blows L1"
                    );
                }
            }
            // Tiny caches still yield the static default.
            let tiny = CacheInfo { l1d: 64, l2: 256 };
            assert_eq!(candidates(mk, tiny, false), vec![static_defaults(mk)]);
        }
    }

    #[test]
    fn tuning_json_roundtrips() {
        let t = Tuning {
            microkernel: "avx2-6x8".to_string(),
            mc: 96,
            kc: 256,
            nc: 2048,
            gflops: 21.375,
            n: 512,
            threads: 1,
        };
        let back = Tuning::from_json(&t.to_json()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(back, t);
    }

    #[test]
    fn malformed_json_is_rejected_with_field_name() {
        let t = Tuning::from_json("{\"microkernel\": \"x\", \"mc\": 4}");
        let err = match t {
            Err(e) => e,
            Ok(_) => panic!("parsed garbage"),
        };
        assert!(err.contains("kc"), "{err}");
    }

    #[cfg(not(miri))]
    #[test]
    fn tuning_file_roundtrips_on_disk() {
        let dir = std::env::temp_dir().join(format!("cubemm-tune-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("{e}"));
        let path = dir.join("tune.json");
        let t = Tuning {
            microkernel: "scalar-4x8".to_string(),
            mc: 64,
            kc: 128,
            nc: 512,
            gflops: 3.5,
            n: 256,
            threads: 2,
        };
        t.save(&path).unwrap_or_else(|e| panic!("{e}"));
        let back = Tuning::load(&path).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(back, t);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(not(miri))]
    #[test]
    fn sweep_measures_every_candidate() {
        // Tiny n: this pins plumbing (grid coverage, ordering), not perf.
        let entries = sweep(MicrokernelImpl::Scalar, 48, 1, 1, false);
        let grid = candidates(MicrokernelImpl::Scalar, detect_caches(), false);
        assert_eq!(entries.len(), grid.len());
        for w in entries.windows(2) {
            assert!(w[0].gflops >= w[1].gflops, "not sorted best-first");
        }
    }
}
