//! In-tree worker threads and scratch buffers for the packed GEMM path.
//!
//! The workspace is deliberately dependency-free (DESIGN.md §2), so the
//! parallel macro-loop of [`crate::gemm`]'s packed kernel runs on this
//! small fixed-size pool instead of `rayon`:
//!
//! * [`ThreadPool`] — persistent workers woken per call; a parallel-for
//!   self-schedules job indices through one shared atomic cursor, so
//!   threads steal whatever work remains instead of being pinned to a
//!   pre-cut slice. The 2-D tiled GEMM driver posts many more jobs than
//!   threads and the tiles at ragged edges are cheaper than interior
//!   ones — dynamic scheduling absorbs that imbalance (and any OS-level
//!   preemption) with one `fetch_add` per job. Which thread runs a job
//!   never affects results: every GEMM job writes a disjoint region of
//!   `C`, so determinism is a property of the job decomposition, not
//!   the schedule.
//! * [`take_scratch`] — thread-local recycling of `Vec<f64>` packing
//!   buffers, so steady-state `gemm_acc` calls allocate nothing.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

/// Recovers the guard from a poisoned lock: pool state is only ever
/// mutated under the lock by panic-free code (worker bodies run inside
/// `catch_unwind`), so the data is consistent even after a panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One posted parallel-for: the body with its lifetime erased plus the
/// slot bookkeeping. The erased reference is only dereferenced between
/// the post and the moment `remaining` reaches zero, and the posting
/// caller blocks in [`ThreadPool::run`] until exactly then.
struct Job {
    body: &'static (dyn Fn(usize) + Sync),
    njobs: usize,
    /// Participating threads; the caller always owns slot 0.
    slots: usize,
    next_slot: usize,
    /// Slots that have not finished yet (the caller's included).
    remaining: usize,
    panicked: bool,
}

struct State {
    epoch: u64,
    job: Option<Job>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    work: Condvar,
    done: Condvar,
    /// Next unclaimed job index of the in-flight parallel-for. Reset
    /// under the state lock when a job is posted; participating threads
    /// `fetch_add` it lock-free while they drain. Only one job is ever
    /// in flight (the posting mutex), so epochs cannot interleave.
    cursor: AtomicUsize,
}

/// A fixed set of persistent worker threads executing parallel-for
/// calls. See the module docs for the design constraints.
pub struct ThreadPool {
    inner: &'static Inner,
    /// Serializes posters: only one parallel-for is in flight at a time.
    /// Calls from inside a running job would deadlock here — the packed
    /// GEMM only ever posts from the top level.
    post: Mutex<()>,
    workers: usize,
}

impl ThreadPool {
    /// Spawns `workers` persistent worker threads (the calling thread
    /// participates too, so total parallelism is `workers + 1`).
    fn new(workers: usize) -> Self {
        let inner: &'static Inner = Box::leak(Box::new(Inner {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
        }));
        for i in 0..workers {
            #[allow(
                clippy::expect_used,
                reason = "thread spawn failure at pool construction is unrecoverable"
            )]
            thread::Builder::new()
                .name(format!("cubemm-gemm-{i}"))
                .spawn(move || worker_loop(inner))
                .expect("spawning GEMM pool worker");
        }
        ThreadPool {
            inner,
            post: Mutex::new(()),
            workers,
        }
    }

    /// The process-wide pool, sized to the machine (`available_parallelism
    /// - 1` workers). Created on first use; lives for the process.
    pub fn global() -> &'static ThreadPool {
        static POOL: OnceLock<ThreadPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = thread::available_parallelism().map_or(1, |n| n.get());
            ThreadPool::new(cores.saturating_sub(1))
        })
    }

    /// Maximum useful `threads` argument to [`ThreadPool::run`].
    pub fn parallelism(&self) -> usize {
        self.workers + 1
    }

    /// Runs `body(0..njobs)` across up to `threads` threads (capped by
    /// the pool size and by `njobs`), blocking until every index has
    /// been executed exactly once. Indices are claimed dynamically from
    /// a shared atomic cursor (work stealing), so a thread stalled on a
    /// slow job never strands the rest of the range — which indices a
    /// given thread executes is *not* deterministic, and callers must
    /// make per-index work independent of the executing thread (GEMM
    /// jobs write disjoint regions of `C`). Panics (after completing
    /// the call) if any body invocation panicked.
    pub fn run(&self, threads: usize, njobs: usize, body: &(dyn Fn(usize) + Sync)) {
        let threads = threads.clamp(1, self.workers + 1).min(njobs.max(1));
        if threads <= 1 || njobs <= 1 {
            for j in 0..njobs {
                body(j);
            }
            return;
        }
        let _posting = lock(&self.post);
        // SAFETY (lifetime erasure): workers dereference `body` only
        // while `remaining > 0` for this epoch, and this function does
        // not return before `remaining == 0`; `body` outlives the call.
        let body_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
        {
            let mut st = lock(&self.inner.state);
            debug_assert!(st.job.is_none(), "GEMM pool job posted reentrantly");
            // Publish the fresh cursor before the epoch flips: workers
            // only claim after observing the new epoch under this lock.
            self.inner.cursor.store(0, Ordering::Relaxed);
            st.job = Some(Job {
                body: body_static,
                njobs,
                slots: threads,
                next_slot: 1,
                remaining: threads,
                panicked: false,
            });
            st.epoch += 1;
            self.inner.work.notify_all();
        }
        // The caller owns slot 0 and works alongside the pool.
        let res = catch_unwind(AssertUnwindSafe(|| {
            drain(body, njobs, &self.inner.cursor);
        }));
        let mut st = lock(&self.inner.state);
        {
            #[allow(
                clippy::expect_used,
                reason = "pool invariant: the posting lock keeps the job alive until remaining hits 0"
            )]
            let job = st.job.as_mut().expect("pool job vanished mid-run");
            if res.is_err() {
                job.panicked = true;
            }
            job.remaining -= 1;
        }
        while st.job.as_ref().is_some_and(|j| j.remaining > 0) {
            st = self.inner.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        #[allow(
            clippy::expect_used,
            reason = "pool invariant: only this poster takes the job it posted"
        )]
        let job = st.job.take().expect("pool job vanished before collection");
        drop(st);
        if job.panicked {
            panic!("cubemm GEMM thread pool: a parallel job panicked");
        }
    }
}

/// Claims and executes job indices from the shared cursor until the
/// range `0..njobs` is exhausted. One `fetch_add` per job — cheap
/// against even the smallest GEMM jobs (a single packed panel copy).
fn drain(body: &(dyn Fn(usize) + Sync), njobs: usize, cursor: &AtomicUsize) {
    loop {
        let j = cursor.fetch_add(1, Ordering::Relaxed);
        if j >= njobs {
            return;
        }
        body(j);
    }
}

fn worker_loop(inner: &'static Inner) {
    let mut seen = 0u64;
    loop {
        let (body, njobs);
        {
            let mut st = lock(&inner.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    if let Some(job) = st.job.as_mut() {
                        if job.next_slot < job.slots {
                            job.next_slot += 1;
                            body = job.body;
                            njobs = job.njobs;
                            break;
                        }
                    }
                    // Every slot of this epoch is already claimed.
                }
                st = inner.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        let res = catch_unwind(AssertUnwindSafe(|| drain(body, njobs, &inner.cursor)));
        let mut st = lock(&inner.state);
        #[allow(
            clippy::expect_used,
            reason = "pool invariant: a claimed slot's job stays posted until every slot reports"
        )]
        let job = st.job.as_mut().expect("pool job vanished under a worker");
        if res.is_err() {
            job.panicked = true;
        }
        job.remaining -= 1;
        if job.remaining == 0 {
            inner.done.notify_all();
        }
    }
}

// ---------------------------------------------------------------------
// Scratch-buffer recycling.

/// Free buffers kept per thread (simulator nodes are threads, so a
/// thread-local free list gives every virtual node its own lock-free
/// pool). Bounded so a burst of large packs cannot pin memory forever.
const MAX_FREE_BUFFERS: usize = 8;

/// Free buffers shared across threads. Simulator node threads are
/// short-lived — every machine boot spawns `p` fresh threads — so
/// purely thread-local recycling would re-allocate every pack on every
/// job of a long-lived serve pool. Exiting threads spill their free
/// lists here and newly booted nodes draw from it before allocating.
const MAX_GLOBAL_FREE: usize = 64;

static GLOBAL_FREE: Mutex<Vec<Vec<f64>>> = Mutex::new(Vec::new());

/// The thread-local free list; spills to [`GLOBAL_FREE`] when the
/// thread exits so a rebooted machine's nodes inherit warm buffers.
struct LocalFree(Vec<Vec<f64>>);

impl Drop for LocalFree {
    fn drop(&mut self) {
        let mut spilled = std::mem::take(&mut self.0);
        if spilled.is_empty() {
            return;
        }
        let mut global = lock(&GLOBAL_FREE);
        spilled.truncate(MAX_GLOBAL_FREE.saturating_sub(global.len()));
        global.append(&mut spilled);
    }
}

thread_local! {
    static FREE: RefCell<LocalFree> = const { RefCell::new(LocalFree(Vec::new())) };
}

/// Takes the newest buffer of sufficient capacity from the process-wide
/// spill pool.
fn take_global(len: usize) -> Option<Vec<f64>> {
    let mut global = lock(&GLOBAL_FREE);
    let pos = global.iter().rposition(|b| b.capacity() >= len)?;
    Some(global.swap_remove(pos))
}

/// A leased scratch buffer; returns to the thread's free list on drop.
pub struct ScratchBuf {
    buf: Vec<f64>,
}

impl ScratchBuf {
    /// The leased storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.buf
    }

    /// The leased storage, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.buf
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 {
            return;
        }
        let _ = FREE.try_with(|free| {
            let mut free = free.borrow_mut();
            if free.0.len() < MAX_FREE_BUFFERS {
                free.0.push(buf);
            }
        });
    }
}

/// Leases a scratch buffer of exactly `len` elements with **unspecified
/// contents** (callers overwrite every element — the packing routines
/// write their zero padding explicitly). Reuses the thread's most
/// recently returned buffer of sufficient capacity, then the
/// process-wide spill pool of exited threads; allocates otherwise.
pub fn take_scratch(len: usize) -> ScratchBuf {
    let reused = FREE
        .try_with(|free| {
            let mut free = free.borrow_mut();
            let pos = free.0.iter().rposition(|b| b.capacity() >= len)?;
            Some(free.0.swap_remove(pos))
        })
        .ok()
        .flatten()
        .or_else(|| take_global(len));
    let mut buf = reused.unwrap_or_default();
    // Adjust length without touching retained contents: `resize` only
    // writes the elements beyond the current length.
    if buf.len() > len {
        buf.truncate(len);
    } else {
        buf.resize(len, 0.0);
    }
    ScratchBuf { buf }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_covers_every_index_once() {
        let pool = ThreadPool::new(3);
        for njobs in [0usize, 1, 2, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..njobs).map(|_| AtomicUsize::new(0)).collect();
            pool.run(4, njobs, &|j| {
                hits[j].fetch_add(1, Ordering::Relaxed);
            });
            for (j, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {j} of {njobs}");
            }
        }
    }

    #[test]
    fn oversubscribed_thread_request_is_clamped() {
        let pool = ThreadPool::new(1);
        let sum = AtomicUsize::new(0);
        pool.run(64, 10, &|j| {
            sum.fetch_add(j, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn sequential_reuse_works() {
        let pool = ThreadPool::new(2);
        for round in 0..20 {
            let count = AtomicUsize::new(0);
            pool.run(3, 16, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 16, "round {round}");
        }
    }

    #[test]
    fn skewed_jobs_are_stolen_not_stranded() {
        // Job 0 spins until every other index has executed. Under the
        // old static partitioning the thread owning job 0 also owned a
        // contiguous share of the range, which could then never run —
        // dynamic self-scheduling lets the other thread steal it all.
        let pool = ThreadPool::new(1); // two participants: worker + caller
        let done = AtomicUsize::new(0);
        const NJOBS: usize = 64;
        pool.run(2, NJOBS, &|j| {
            if j == 0 {
                let mut spins = 0u64;
                while done.load(Ordering::Acquire) < NJOBS - 1 {
                    thread::yield_now();
                    spins += 1;
                    assert!(
                        spins < 1_000_000_000,
                        "remaining jobs were never stolen by the other thread"
                    );
                }
            }
            done.fetch_add(1, Ordering::Release);
        });
        assert_eq!(done.load(Ordering::Relaxed), NJOBS);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ThreadPool::new(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run(3, 8, &|j| {
                assert!(j != 5, "deliberate test panic");
            });
        }));
        assert!(res.is_err());
        // The pool stays usable after a propagated panic.
        let count = AtomicUsize::new(0);
        pool.run(3, 8, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let pool = ThreadPool::global();
        assert!(pool.parallelism() >= 1);
        assert!(std::ptr::eq(pool, ThreadPool::global()));
    }

    #[test]
    fn scratch_buffers_are_recycled() {
        let ptr = {
            let mut s = take_scratch(1024);
            s.as_mut_slice()[0] = 1.0;
            s.as_slice().as_ptr() as usize
        };
        // Same thread, same (or larger) request: the lease comes back.
        let s = take_scratch(512);
        assert_eq!(s.as_slice().as_ptr() as usize, ptr);
        assert_eq!(s.as_slice().len(), 512);
    }

    #[test]
    fn exited_threads_spill_scratch_to_the_global_pool() {
        // Lease-and-return an odd-sized buffer on a short-lived thread
        // (modelling one virtual node of a rebooted machine), then show
        // a *different* fresh thread can reuse that very allocation.
        const LEN: usize = 77_777;
        let ptr = thread::spawn(|| {
            let s = take_scratch(LEN);
            let p = s.as_slice().as_ptr() as usize;
            drop(s);
            p
        })
        .join()
        .unwrap();
        // Another thread may race us for the spilled buffer (tests run
        // concurrently), so retry a few times before concluding the
        // spill never happened.
        for _ in 0..32 {
            let got = thread::spawn(|| {
                let s = take_scratch(LEN);
                s.as_slice().as_ptr() as usize
            })
            .join()
            .unwrap();
            if got == ptr {
                return;
            }
        }
        panic!("no fresh thread ever inherited the spilled buffer");
    }

    #[test]
    fn scratch_grows_on_demand() {
        let s = take_scratch(10);
        assert_eq!(s.as_slice().len(), 10);
        drop(s);
        let s = take_scratch(100_000);
        assert_eq!(s.as_slice().len(), 100_000);
    }
}
