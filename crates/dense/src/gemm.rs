//! Local dense multiplication kernels.
//!
//! All distributed algorithms bottom out in `C += A·B` on local blocks.
//! The paper's comparison concerns communication only, so the kernels
//! exist (a) to actually produce correct products in the simulator,
//! (b) for the "local kernel choice is orthogonal" ablation bench, and
//! (c) — since the simulator's wall-clock really computes every block —
//! to make end-to-end runs as fast as the host allows. The fast path is
//! [`Kernel::Packed`]: a cache-blocked GEMM with panel packing
//! ([`crate::pack`]), a runtime-dispatched register-tiled microkernel
//! ([`crate::microkernel`] — AVX2+FMA `6×8` where the host has it,
//! portable `4×8` otherwise), blocking parameters resolved through the
//! tuning layer ([`crate::tune`]), and 2-D tiled parallelism over the
//! in-tree work-stealing pool ([`crate::pool`]).
//!
//! # Determinism contract
//!
//! The packed product is **bitwise identical across thread counts**:
//! every `C` element is accumulated by exactly one compute job, as one
//! FMA chain per `kc` block in ascending `k`, and `kc` blocks are
//! barrier-ordered — the schedule decides *who* computes a tile, never
//! *what* is computed. It is also bitwise identical across the
//! SIMD/scalar microkernels for a fixed `kc` split (both are
//! correctly-rounded FMA; see `microkernel.rs`). Changing `kc` changes
//! where the per-block accumulator is folded into `C` and therefore the
//! rounding — so reproducible deployments pin `kc` (or rely on the
//! shared untuned default). See DESIGN.md §9.

use crate::microkernel::MicrokernelImpl;
use crate::pack::{pack_a, pack_a_panel, pack_b, pack_b_panel, packed_a_len, packed_b_len};
use crate::pool::{take_scratch, ThreadPool};
use crate::tune::{self, Blocking};
use crate::Matrix;

/// Untuned cache-block height of `A` for the scalar microkernel
/// (`mc` rows per packed A block). Tuned hosts override via
/// `cubemm tune-kernel` (see [`crate::tune`]).
pub const DEFAULT_MC: usize = 64;
/// Untuned shared-dimension depth (`kc` steps per packed panel pair).
/// Shared by every microkernel so untuned runs are bitwise comparable
/// across hosts (`kc` is the one blocking parameter that affects bits).
pub const DEFAULT_KC: usize = 256;
/// Untuned cache-block width of `B`/`C` for the scalar microkernel.
pub const DEFAULT_NC: usize = 512;

/// Products with at most this many `m·k·n` flops-elements run the packed
/// path single-threaded even when more threads were requested: below
/// roughly `256³` the pool's dispatch + barrier costs more than the
/// parallelism recovers (BENCH_kernels.json showed 2 threads *losing*
/// to 1 at `n = 128` under the old always-dispatch driver).
pub const PAR_MIN_ELEMS: usize = 1 << 24;

/// Which local kernel to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Textbook triple loop in `ijk` order.
    Naive,
    /// Loop-reordered `ikj`: streams rows of `B`, vectorizes well.
    Ikj,
    /// Cache-tiled `ikj` with the given square tile size.
    Blocked(usize),
    /// Panel-packed, register-tiled GEMM (the fast path; the default).
    ///
    /// `mc`/`kc`/`nc` are the cache-block sizes (`0` resolves through
    /// the tuning layer: a host-tuned file written by
    /// `cubemm tune-kernel` when present, per-microkernel static
    /// defaults otherwise); `threads` caps the 2-D tile parallelism
    /// (`0` uses every hardware thread, `1` stays sequential; products
    /// at or below [`PAR_MIN_ELEMS`] run sequentially regardless). The
    /// product is bit-for-bit identical across `threads` values: each
    /// `C` element is accumulated by exactly one tile job in a fixed
    /// `kc`-block order.
    Packed {
        /// Rows of `A` per packed block (`0` = tuned/default).
        mc: usize,
        /// Depth of each packed panel pair (`0` = tuned/default).
        kc: usize,
        /// Columns of `B` per macro panel (`0` = tuned/default).
        nc: usize,
        /// Worker threads for the tile loop (`0` = all cores).
        threads: usize,
    },
}

impl Kernel {
    /// The packed kernel with tuned default tiles, single-threaded —
    /// the right choice inside the simulator, where the `p` virtual
    /// nodes already occupy one OS thread each.
    pub const fn packed() -> Kernel {
        Kernel::Packed {
            mc: 0,
            kc: 0,
            nc: 0,
            threads: 1,
        }
    }

    /// The packed kernel with tuned default tiles and an explicit
    /// macro-loop thread count (`0` = all cores).
    pub const fn packed_mt(threads: usize) -> Kernel {
        Kernel::Packed {
            mc: 0,
            kc: 0,
            nc: 0,
            threads,
        }
    }
}

impl Default for Kernel {
    /// The packed single-threaded kernel.
    fn default() -> Self {
        Kernel::packed()
    }
}

/// `C += A·B` with the chosen kernel.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm_acc(c: &mut Matrix, a: &Matrix, b: &Matrix, kernel: Kernel) {
    gemm_acc_with_microkernel(c, a, b, kernel, MicrokernelImpl::active());
}

/// [`gemm_acc`] with an explicit microkernel implementation for the
/// packed path (other kernels ignore it). This is how the forced-scalar
/// determinism suite and the `packed-scalar`/`packed-simd` bench rows
/// pin a specific impl; ordinary callers use [`gemm_acc`], which runs
/// the host-detected best kernel.
///
/// # Panics
/// Panics on dimension mismatch, and if an `Avx2` impl is passed on a
/// host without AVX2+FMA.
pub fn gemm_acc_with_microkernel(
    c: &mut Matrix,
    a: &Matrix,
    b: &Matrix,
    kernel: Kernel,
    mk: MicrokernelImpl,
) {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "C row mismatch");
    assert_eq!(c.cols(), b.cols(), "C col mismatch");
    if mk == MicrokernelImpl::Avx2 {
        assert_eq!(
            MicrokernelImpl::detect(),
            MicrokernelImpl::Avx2,
            "AVX2 microkernel requested on a host without AVX2+FMA"
        );
    }
    match kernel {
        Kernel::Naive => naive(c, a, b),
        Kernel::Ikj => ikj(c, a, b),
        Kernel::Blocked(tile) => blocked(c, a, b, tile.max(1)),
        Kernel::Packed {
            mc,
            kc,
            nc,
            threads,
        } => packed(c, a, b, mc, kc, nc, threads, mk),
    }
}

/// `A·B` into a fresh matrix with the default kernel.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_acc(&mut c, a, b, Kernel::default());
    c
}

/// Sequential reference product used to verify every distributed run.
/// Deliberately a *different* kernel (plain cache-tiled `ikj`) from the
/// packed default the algorithms run with, so verification exercises
/// two independent code paths.
pub fn reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_acc(&mut c, a, b, Kernel::Blocked(64));
    c
}

fn naive(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a[(i, l)] * b[(l, j)];
            }
            c[(i, j)] += acc;
        }
    }
}

fn ikj(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        for l in 0..k {
            let aval = a[(i, l)];
            if aval == 0.0 {
                continue;
            }
            let brow = b.row(l);
            let crow = &mut c.as_mut_slice()[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += aval * bv;
            }
        }
    }
}

fn blocked(c: &mut Matrix, a: &Matrix, b: &Matrix, tile: usize) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i0 in (0..m).step_by(tile) {
        let imax = (i0 + tile).min(m);
        for l0 in (0..k).step_by(tile) {
            let lmax = (l0 + tile).min(k);
            for j0 in (0..n).step_by(tile) {
                let jmax = (j0 + tile).min(n);
                for i in i0..imax {
                    for l in l0..lmax {
                        let aval = a[(i, l)];
                        let brow = &b.row(l)[j0..jmax];
                        let crow = &mut c.as_mut_slice()[i * n + j0..i * n + jmax];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aval * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Shared `*mut f64` for the tile/pack jobs. Each job's writes stay
/// inside its own disjoint region (microtiles of `C`, or panels of a
/// packing buffer), so concurrent jobs never touch the same element.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
// SAFETY: jobs write disjoint regions (guaranteed by the drivers' tile/
// panel arithmetic); the pointer itself is plain data.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor (rather than field access) so closures capture the
    /// `Sync` wrapper, not the bare `*mut f64` — edition-2021 disjoint
    /// capture would otherwise grab the non-`Sync` field itself.
    #[inline]
    fn get(self) -> *mut f64 {
        self.0
    }
}

/// The packed driver: BLIS-style five-loop blocking.
///
/// ```text
/// for jc in 0..n step nc        // column panels
///   for pc in 0..k step kc      //   pack B[pc.., jc..] → Bp (parallel: per NR panel)
///     (parallel: pack A[0..m, pc..] → Ap, per MR panel)
///     for (ic, jr) 2-D tile jobs // work-stolen across threads
///       for ir (register tiles)
///         microkernel: C[ic+ir·MR.., jc+jr·NR..] += Ap·Bp
/// ```
///
/// Serial (`threads <= 1` or small products) takes the classic
/// `ic`-blocked path instead, which packs each `mc × kc` block of `A`
/// just before using it. Both orders accumulate every `C` element
/// identically (see the module docs), so the choice is invisible in
/// the bits.
#[allow(clippy::too_many_arguments, reason = "internal driver fan-in")]
fn packed(
    c: &mut Matrix,
    a: &Matrix,
    b: &Matrix,
    mc: usize,
    kc: usize,
    nc: usize,
    threads: usize,
    mk: MicrokernelImpl,
) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let bl = tune::resolve(mc, kc, nc, mk);
    let threads = if threads == 0 {
        ThreadPool::global().parallelism()
    } else {
        threads
    };
    let work = m.saturating_mul(k).saturating_mul(n);
    if threads <= 1 || work <= PAR_MIN_ELEMS {
        packed_serial(c, a, b, &bl, mk);
    } else {
        packed_parallel(c, a, b, &bl, threads, mk);
    }
}

/// Single-threaded packed path: no pool dispatch, no barriers, `A`
/// blocks packed on first use so the working set is one `mc × kc` block
/// plus one `B` panel.
fn packed_serial(c: &mut Matrix, a: &Matrix, b: &Matrix, bl: &Blocking, mk: MicrokernelImpl) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let (mr, nr) = (mk.mr(), mk.nr());
    let ldc = n;
    let cp = c.as_mut_slice().as_mut_ptr();
    for jc in (0..n).step_by(bl.nc) {
        let ncw = bl.nc.min(n - jc);
        let npan = ncw.div_ceil(nr);
        for pc in (0..k).step_by(bl.kc) {
            let kcw = bl.kc.min(k - pc);
            let mut bbuf = take_scratch(packed_b_len(kcw, ncw, nr));
            pack_b(b, pc, jc, kcw, ncw, nr, bbuf.as_mut_slice());
            for ic in (0..m).step_by(bl.mc) {
                let mcw = bl.mc.min(m - ic);
                let mpan = mcw.div_ceil(mr);
                let mut abuf = take_scratch(packed_a_len(mcw, kcw, mr));
                pack_a(a, ic, pc, mcw, kcw, mr, abuf.as_mut_slice());
                for jr in 0..npan {
                    let nrw = nr.min(ncw - jr * nr);
                    let bp = &bbuf.as_slice()[jr * nr * kcw..(jr + 1) * nr * kcw];
                    for ir in 0..mpan {
                        let mrw = mr.min(mcw - ir * mr);
                        let ap = &abuf.as_slice()[ir * mr * kcw..(ir + 1) * mr * kcw];
                        // SAFETY: the tile spans rows ic+ir·mr .. +mrw
                        // and columns jc+jr·nr .. +nrw, all inside the
                        // m × ldc bounds of `C`; single-threaded, so no
                        // concurrent writers at all.
                        unsafe {
                            let tile = cp.add((ic + ir * mr) * ldc + jc + jr * nr);
                            mk.run(ap, bp, tile, ldc, mrw, nrw);
                        }
                    }
                }
            }
        }
    }
}

/// Parallel packed path. Per `(jc, pc)` macro-iteration the pool runs
/// two phases:
///
/// 1. **Pack** — every `mr`-row panel of the `A` k-slab and every
///    `nr`-column panel of the `B` block is one job writing one
///    disjoint slice of the shared packing buffers.
/// 2. **Compute** — jobs are `(mc-row-block × nr-column-panel)` 2-D
///    tiles of `C`, claimed dynamically (work stealing); consecutive
///    job indices share the same packed `A` block, so a thread's stolen
///    neighborhood stays cache-warm. Each `mr × nr` microtile has
///    exactly one writer, which is the whole determinism argument:
///    scheduling decides who computes a tile, never what is computed.
fn packed_parallel(
    c: &mut Matrix,
    a: &Matrix,
    b: &Matrix,
    bl: &Blocking,
    threads: usize,
    mk: MicrokernelImpl,
) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let (mr, nr) = (mk.mr(), mk.nr());
    let ldc = n;
    let pool = ThreadPool::global();
    let cp = SendPtr(c.as_mut_slice().as_mut_ptr());
    let apan = m.div_ceil(mr);
    let nblocks = m.div_ceil(bl.mc);
    for jc in (0..n).step_by(bl.nc) {
        let ncw = bl.nc.min(n - jc);
        let npan = ncw.div_ceil(nr);
        for pc in (0..k).step_by(bl.kc) {
            let kcw = bl.kc.min(k - pc);
            let mut abuf = take_scratch(apan * mr * kcw);
            let mut bbuf = take_scratch(npan * nr * kcw);
            let ap = SendPtr(abuf.as_mut_slice().as_mut_ptr());
            let bp = SendPtr(bbuf.as_mut_slice().as_mut_ptr());
            // Phase 1: pack every panel of this k-slab (A) and block
            // (B); jobs 0..apan are A panels, the rest B panels.
            pool.run(threads, apan + npan, &move |job| {
                if job < apan {
                    let row0 = job * mr;
                    let live = mr.min(m - row0);
                    // SAFETY: job < apan owns exactly the A slice
                    // [job·mr·kcw, (job+1)·mr·kcw) — in bounds of the
                    // apan·mr·kcw buffer and disjoint from every other
                    // job's slice; the buffer outlives the pool call.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(ap.get().add(job * mr * kcw), mr * kcw)
                    };
                    pack_a_panel(a, row0, pc, live, kcw, mr, dst);
                } else {
                    let p = job - apan;
                    let col0 = p * nr;
                    let live = nr.min(ncw - col0);
                    // SAFETY: as above for the B slice of panel p.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(bp.get().add(p * nr * kcw), nr * kcw)
                    };
                    pack_b_panel(b, pc, jc + col0, live, kcw, nr, dst);
                }
            });
            // Phase 2: 2-D tile jobs over (row block, column panel).
            // pool.run's completion barrier orders every pack write
            // before any compute read.
            pool.run(threads, nblocks * npan, &move |job| {
                let ic = (job / npan) * bl.mc;
                let jr = job % npan;
                let mcw = bl.mc.min(m - ic);
                let nrw = nr.min(ncw - jr * nr);
                // SAFETY: shared re-borrow of the fully packed,
                // no-longer-written B panel jr (pack phase completed
                // under the pool barrier above).
                let bpan = unsafe {
                    std::slice::from_raw_parts(bp.get().add(jr * nr * kcw).cast_const(), nr * kcw)
                };
                for ir in 0..mcw.div_ceil(mr) {
                    // mc is a multiple of mr (tune::resolve), so block
                    // boundaries align with packed A panel boundaries.
                    let row0 = ic + ir * mr;
                    let mrw = mr.min(m - row0);
                    // SAFETY: shared re-borrow of packed A panel
                    // row0/mr, same argument as the B panel.
                    let apanel = unsafe {
                        std::slice::from_raw_parts(
                            ap.get().add((row0 / mr) * mr * kcw).cast_const(),
                            mr * kcw,
                        )
                    };
                    // SAFETY: the tile spans rows row0 .. +mrw and
                    // columns jc+jr·nr .. +nrw, inside the m × ldc
                    // bounds of `C`; this (job, ir) pair is the tile's
                    // only writer (jobs partition the (block, panel)
                    // grid and ir walks disjoint row panels).
                    unsafe {
                        let tile = cp.get().add(row0 * ldc + jc + jr * nr);
                        mk.run(apanel, bpan, tile, ldc, mrw, nrw);
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels() -> Vec<Kernel> {
        vec![
            Kernel::Naive,
            Kernel::Ikj,
            Kernel::Blocked(4),
            Kernel::Blocked(64),
            Kernel::packed(),
            Kernel::packed_mt(2),
            Kernel::Packed {
                mc: 8,
                kc: 3,
                nc: 16,
                threads: 1,
            },
        ]
    }

    fn impls() -> Vec<MicrokernelImpl> {
        let mut v = vec![MicrokernelImpl::Scalar];
        if MicrokernelImpl::detect() == MicrokernelImpl::Avx2 {
            v.push(MicrokernelImpl::Avx2);
        }
        v
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::random(9, 9, 3);
        let i = Matrix::identity(9);
        for k in kernels() {
            let mut c = Matrix::zeros(9, 9);
            gemm_acc(&mut c, &a, &i, k);
            assert!(c.max_abs_diff(&a) < 1e-12, "kernel {k:?}");
        }
    }

    #[test]
    fn kernels_agree_on_rectangular_shapes() {
        let a = Matrix::random(7, 13, 1);
        let b = Matrix::random(13, 5, 2);
        let mut base = Matrix::zeros(7, 5);
        gemm_acc(&mut base, &a, &b, Kernel::Naive);
        for k in kernels() {
            for mk in impls() {
                let mut c = Matrix::zeros(7, 5);
                gemm_acc_with_microkernel(&mut c, &a, &b, k, mk);
                assert!(c.max_abs_diff(&base) < 1e-10, "kernel {k:?} impl {mk:?}");
            }
        }
    }

    #[test]
    fn gemm_accumulates_rather_than_overwrites() {
        for k in [Kernel::Ikj, Kernel::packed()] {
            let a = Matrix::identity(3);
            let b = Matrix::identity(3);
            let mut c = Matrix::from_fn(3, 3, |_, _| 1.0);
            gemm_acc(&mut c, &a, &b, k);
            assert_eq!(c[(0, 0)], 2.0, "kernel {k:?}");
            assert_eq!(c[(0, 1)], 1.0, "kernel {k:?}");
        }
    }

    #[test]
    fn known_small_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn packed_is_bitwise_stable_across_thread_counts() {
        // Small products take the single-threaded fast path whatever
        // `threads` says, so this exercises the *request* surface; the
        // parallel driver itself is pinned by the direct tests below
        // and the above-threshold suite in tests/determinism.rs.
        let a = Matrix::random(37, 23, 11);
        let b = Matrix::random(23, 61, 12);
        let mut base = Matrix::zeros(37, 61);
        gemm_acc(
            &mut base,
            &a,
            &b,
            Kernel::Packed {
                mc: 16,
                kc: 8,
                nc: 16,
                threads: 1,
            },
        );
        for threads in [2usize, 3, 4, 8] {
            let mut c = Matrix::zeros(37, 61);
            gemm_acc(
                &mut c,
                &a,
                &b,
                Kernel::Packed {
                    mc: 16,
                    kc: 8,
                    nc: 16,
                    threads,
                },
            );
            assert_eq!(c, base, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_driver_matches_serial_bitwise() {
        // Call the parallel driver directly (bypassing the small-job
        // fast path) on shapes that span several blocks and panels in
        // both dimensions, including ragged edges. Runs under miri too
        // — this is the cheapest full exercise of the SendPtr sharing.
        for mk in impls() {
            for (m, k, n) in [(37, 23, 61), (64, 16, 40), (13, 9, 90), (70, 70, 70)] {
                let a = Matrix::random(m, k, 7 + m as u64);
                let b = Matrix::random(k, n, 8 + n as u64);
                let bl = Blocking {
                    mc: 24usize.next_multiple_of(mk.mr()),
                    kc: 16,
                    nc: 32usize.next_multiple_of(mk.nr()),
                };
                let mut want = Matrix::zeros(m, n);
                packed_serial(&mut want, &a, &b, &bl, mk);
                for threads in [2usize, 4] {
                    let mut got = Matrix::zeros(m, n);
                    packed_parallel(&mut got, &a, &b, &bl, threads, mk);
                    assert_eq!(got, want, "{mk:?} {m}x{k}x{n} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn microkernel_impls_agree_bitwise_at_shared_kc() {
        // The cross-impl half of the determinism contract: same kc ⇒
        // same bits, whatever the tile shape. mc/nc deliberately differ
        // between the two runs to show they are bitwise-neutral.
        if MicrokernelImpl::detect() != MicrokernelImpl::Avx2 {
            return;
        }
        let (m, k, n) = (45, 33, 52);
        let a = Matrix::random(m, k, 91);
        let b = Matrix::random(k, n, 92);
        let mut scalar = Matrix::zeros(m, n);
        gemm_acc_with_microkernel(
            &mut scalar,
            &a,
            &b,
            Kernel::Packed {
                mc: 16,
                kc: 8,
                nc: 24,
                threads: 1,
            },
            MicrokernelImpl::Scalar,
        );
        let mut simd = Matrix::zeros(m, n);
        gemm_acc_with_microkernel(
            &mut simd,
            &a,
            &b,
            Kernel::Packed {
                mc: 30,
                kc: 8,
                nc: 40,
                threads: 2,
            },
            MicrokernelImpl::Avx2,
        );
        assert_eq!(scalar, simd);
    }

    #[test]
    fn packed_handles_degenerate_shapes() {
        for (m, k, n) in [(0, 4, 4), (4, 0, 4), (4, 4, 0), (1, 1, 1), (1, 9, 1)] {
            let a = Matrix::random(m, k, 1);
            let b = Matrix::random(k, n, 2);
            let mut want = Matrix::zeros(m, n);
            gemm_acc(&mut want, &a, &b, Kernel::Naive);
            let mut got = Matrix::zeros(m, n);
            gemm_acc(&mut got, &a, &b, Kernel::packed());
            assert!(got.max_abs_diff(&want) < 1e-12, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn default_kernel_is_packed_single_threaded() {
        assert_eq!(Kernel::default(), Kernel::packed());
        assert!(matches!(
            Kernel::default(),
            Kernel::Packed { threads: 1, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }
}
