//! Local dense multiplication kernels.
//!
//! All distributed algorithms bottom out in `C += A·B` on local blocks.
//! The paper's comparison concerns communication only, so the kernels
//! exist (a) to actually produce correct products in the simulator,
//! (b) for the "local kernel choice is orthogonal" ablation bench, and
//! (c) — since the simulator's wall-clock really computes every block —
//! to make end-to-end runs as fast as the host allows. The fast path is
//! [`Kernel::Packed`]: a cache-blocked GEMM with panel packing
//! ([`crate::pack`]), a 4×8 register-tiled microkernel
//! ([`crate::microkernel`]), and an optional in-tree thread pool
//! ([`crate::pool`]) over the column-panel macro-loop.

use crate::microkernel::{microkernel, MR, NR};
use crate::pack::{pack_a, pack_b, packed_a_len, packed_b_len};
use crate::pool::{take_scratch, ThreadPool};
use crate::Matrix;

/// Default cache-block height of `A` (`mc` rows per packed A block).
pub const DEFAULT_MC: usize = 64;
/// Default shared-dimension depth (`kc` steps per packed panel pair).
pub const DEFAULT_KC: usize = 256;
/// Default cache-block width of `B`/`C` (`nc` columns per column panel).
pub const DEFAULT_NC: usize = 512;

/// Which local kernel to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Textbook triple loop in `ijk` order.
    Naive,
    /// Loop-reordered `ikj`: streams rows of `B`, vectorizes well.
    Ikj,
    /// Cache-tiled `ikj` with the given square tile size.
    Blocked(usize),
    /// Panel-packed, register-tiled GEMM (the fast path; the default).
    ///
    /// `mc`/`kc`/`nc` are the cache-block sizes (`0` picks the tuned
    /// defaults [`DEFAULT_MC`]/[`DEFAULT_KC`]/[`DEFAULT_NC`]); `threads`
    /// is the macro-loop parallelism over column panels (`0` uses every
    /// hardware thread, `1` stays sequential). The product is
    /// bit-for-bit identical across `threads` values: each `C` element
    /// is accumulated by exactly one panel job in a fixed `kc`-block
    /// order.
    Packed {
        /// Rows of `A` per packed block (`0` = default).
        mc: usize,
        /// Depth of each packed panel pair (`0` = default).
        kc: usize,
        /// Columns of `B` per macro panel (`0` = default).
        nc: usize,
        /// Worker threads for the macro-loop (`0` = all cores).
        threads: usize,
    },
}

impl Kernel {
    /// The packed kernel with tuned default tiles, single-threaded —
    /// the right choice inside the simulator, where the `p` virtual
    /// nodes already occupy one OS thread each.
    pub const fn packed() -> Kernel {
        Kernel::Packed {
            mc: 0,
            kc: 0,
            nc: 0,
            threads: 1,
        }
    }

    /// The packed kernel with tuned default tiles and an explicit
    /// macro-loop thread count (`0` = all cores).
    pub const fn packed_mt(threads: usize) -> Kernel {
        Kernel::Packed {
            mc: 0,
            kc: 0,
            nc: 0,
            threads,
        }
    }
}

impl Default for Kernel {
    /// The packed single-threaded kernel.
    fn default() -> Self {
        Kernel::packed()
    }
}

/// `C += A·B` with the chosen kernel.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm_acc(c: &mut Matrix, a: &Matrix, b: &Matrix, kernel: Kernel) {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "C row mismatch");
    assert_eq!(c.cols(), b.cols(), "C col mismatch");
    match kernel {
        Kernel::Naive => naive(c, a, b),
        Kernel::Ikj => ikj(c, a, b),
        Kernel::Blocked(tile) => blocked(c, a, b, tile.max(1)),
        Kernel::Packed {
            mc,
            kc,
            nc,
            threads,
        } => packed(c, a, b, mc, kc, nc, threads),
    }
}

/// `A·B` into a fresh matrix with the default kernel.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_acc(&mut c, a, b, Kernel::default());
    c
}

/// Sequential reference product used to verify every distributed run.
/// Deliberately a *different* kernel (plain cache-tiled `ikj`) from the
/// packed default the algorithms run with, so verification exercises
/// two independent code paths.
pub fn reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_acc(&mut c, a, b, Kernel::Blocked(64));
    c
}

fn naive(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a[(i, l)] * b[(l, j)];
            }
            c[(i, j)] += acc;
        }
    }
}

fn ikj(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        for l in 0..k {
            let aval = a[(i, l)];
            if aval == 0.0 {
                continue;
            }
            let brow = b.row(l);
            let crow = &mut c.as_mut_slice()[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += aval * bv;
            }
        }
    }
}

fn blocked(c: &mut Matrix, a: &Matrix, b: &Matrix, tile: usize) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i0 in (0..m).step_by(tile) {
        let imax = (i0 + tile).min(m);
        for l0 in (0..k).step_by(tile) {
            let lmax = (l0 + tile).min(k);
            for j0 in (0..n).step_by(tile) {
                let jmax = (j0 + tile).min(n);
                for i in i0..imax {
                    for l in l0..lmax {
                        let aval = a[(i, l)];
                        let brow = &b.row(l)[j0..jmax];
                        let crow = &mut c.as_mut_slice()[i * n + j0..i * n + jmax];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aval * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Shared `*mut f64` into `C` for the column-panel jobs. Each job's
/// writes stay inside its own disjoint set of columns, so concurrent
/// tile updates never touch the same element.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
// SAFETY: jobs write disjoint column ranges of `C` (asserted by the
// driver's panel arithmetic); the pointer itself is plain data.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// The packed driver: BLIS-style five-loop blocking.
///
/// ```text
/// for jc in 0..n step nc        // column panels — parallelized
///   for pc in 0..k step kc      //   pack B[pc.., jc..] → Bp
///     for ic in 0..m step mc    //     pack A[ic.., pc..] → Ap
///       for jr, ir (register tiles)
///         microkernel: C[ic+ir·MR.., jc+jr·NR..] += Ap·Bp
/// ```
fn packed(c: &mut Matrix, a: &Matrix, b: &Matrix, mc: usize, kc: usize, nc: usize, threads: usize) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let mc = if mc == 0 { DEFAULT_MC } else { mc }
        .next_multiple_of(MR)
        .max(MR);
    let kc = if kc == 0 { DEFAULT_KC } else { kc }.max(1);
    let nc = if nc == 0 { DEFAULT_NC } else { nc }
        .next_multiple_of(NR)
        .max(NR);
    let threads = if threads == 0 {
        ThreadPool::global().parallelism()
    } else {
        threads
    };
    let npanels = n.div_ceil(nc);
    let cp = SendPtr(c.as_mut_slice().as_mut_ptr());
    let body = |jp: usize| {
        let jc = jp * nc;
        let ncw = nc.min(n - jc);
        packed_panel(cp, a, b, jc, ncw, mc, kc);
    };
    if threads <= 1 || npanels <= 1 {
        for jp in 0..npanels {
            body(jp);
        }
    } else {
        ThreadPool::global().run(threads, npanels, &body);
    }
}

/// Computes columns `[jc, jc + ncw)` of `C += A·B` (one macro panel).
fn packed_panel(cp: SendPtr, a: &Matrix, b: &Matrix, jc: usize, ncw: usize, mc: usize, kc: usize) {
    let (m, k, ldc) = (a.rows(), a.cols(), b.cols());
    let npan = ncw.div_ceil(NR);
    for pc in (0..k).step_by(kc) {
        let kcw = kc.min(k - pc);
        let mut bbuf = take_scratch(packed_b_len(kcw, ncw));
        pack_b(b, pc, jc, kcw, ncw, bbuf.as_mut_slice());
        for ic in (0..m).step_by(mc) {
            let mcw = mc.min(m - ic);
            let mpan = mcw.div_ceil(MR);
            let mut abuf = take_scratch(packed_a_len(mcw, kcw));
            pack_a(a, ic, pc, mcw, kcw, abuf.as_mut_slice());
            for jr in 0..npan {
                let nr = NR.min(ncw - jr * NR);
                let bp = &bbuf.as_slice()[jr * NR * kcw..(jr + 1) * NR * kcw];
                for ir in 0..mpan {
                    let mr = MR.min(mcw - ir * MR);
                    let ap = &abuf.as_slice()[ir * MR * kcw..(ir + 1) * MR * kcw];
                    // SAFETY: the tile spans rows ic+ir·MR .. +mr and
                    // columns jc+jr·NR .. +nr, all inside the m × ldc
                    // bounds of `C` and inside this job's column range.
                    unsafe {
                        let tile = cp.0.add((ic + ir * MR) * ldc + jc + jr * NR);
                        microkernel(ap, bp, tile, ldc, mr, nr);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels() -> Vec<Kernel> {
        vec![
            Kernel::Naive,
            Kernel::Ikj,
            Kernel::Blocked(4),
            Kernel::Blocked(64),
            Kernel::packed(),
            Kernel::packed_mt(2),
            Kernel::Packed {
                mc: 8,
                kc: 3,
                nc: 16,
                threads: 1,
            },
        ]
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::random(9, 9, 3);
        let i = Matrix::identity(9);
        for k in kernels() {
            let mut c = Matrix::zeros(9, 9);
            gemm_acc(&mut c, &a, &i, k);
            assert!(c.max_abs_diff(&a) < 1e-12, "kernel {k:?}");
        }
    }

    #[test]
    fn kernels_agree_on_rectangular_shapes() {
        let a = Matrix::random(7, 13, 1);
        let b = Matrix::random(13, 5, 2);
        let mut base = Matrix::zeros(7, 5);
        gemm_acc(&mut base, &a, &b, Kernel::Naive);
        for k in kernels() {
            let mut c = Matrix::zeros(7, 5);
            gemm_acc(&mut c, &a, &b, k);
            assert!(c.max_abs_diff(&base) < 1e-10, "kernel {k:?}");
        }
    }

    #[test]
    fn gemm_accumulates_rather_than_overwrites() {
        for k in [Kernel::Ikj, Kernel::packed()] {
            let a = Matrix::identity(3);
            let b = Matrix::identity(3);
            let mut c = Matrix::from_fn(3, 3, |_, _| 1.0);
            gemm_acc(&mut c, &a, &b, k);
            assert_eq!(c[(0, 0)], 2.0, "kernel {k:?}");
            assert_eq!(c[(0, 1)], 1.0, "kernel {k:?}");
        }
    }

    #[test]
    fn known_small_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn packed_is_bitwise_stable_across_thread_counts() {
        // Spanning several column panels at a small nc forces real
        // parallel splits; the per-element accumulation order must not
        // depend on how panels are distributed over threads.
        let a = Matrix::random(37, 23, 11);
        let b = Matrix::random(23, 61, 12);
        let mut base = Matrix::zeros(37, 61);
        gemm_acc(
            &mut base,
            &a,
            &b,
            Kernel::Packed {
                mc: 16,
                kc: 8,
                nc: 16,
                threads: 1,
            },
        );
        for threads in [2usize, 3, 4, 8] {
            let mut c = Matrix::zeros(37, 61);
            gemm_acc(
                &mut c,
                &a,
                &b,
                Kernel::Packed {
                    mc: 16,
                    kc: 8,
                    nc: 16,
                    threads,
                },
            );
            assert_eq!(c, base, "threads = {threads}");
        }
    }

    #[test]
    fn packed_handles_degenerate_shapes() {
        for (m, k, n) in [(0, 4, 4), (4, 0, 4), (4, 4, 0), (1, 1, 1), (1, 9, 1)] {
            let a = Matrix::random(m, k, 1);
            let b = Matrix::random(k, n, 2);
            let mut want = Matrix::zeros(m, n);
            gemm_acc(&mut want, &a, &b, Kernel::Naive);
            let mut got = Matrix::zeros(m, n);
            gemm_acc(&mut got, &a, &b, Kernel::packed());
            assert!(got.max_abs_diff(&want) < 1e-12, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn default_kernel_is_packed_single_threaded() {
        assert_eq!(Kernel::default(), Kernel::packed());
        assert!(matches!(
            Kernel::default(),
            Kernel::Packed { threads: 1, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }
}
