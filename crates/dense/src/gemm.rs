//! Local dense multiplication kernels.
//!
//! All distributed algorithms bottom out in `C += A·B` on local blocks.
//! Three kernels are provided; the paper's comparison concerns
//! communication, so the kernels exist (a) to actually produce correct
//! products in the simulator and (b) for the "local kernel choice is
//! orthogonal" ablation bench.

use crate::Matrix;

/// Which local kernel to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Textbook triple loop in `ijk` order.
    Naive,
    /// Loop-reordered `ikj`: streams rows of `B`, vectorizes well.
    #[default]
    Ikj,
    /// Cache-tiled `ikj` with the given square tile size.
    Blocked(usize),
}

/// `C += A·B` with the chosen kernel.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm_acc(c: &mut Matrix, a: &Matrix, b: &Matrix, kernel: Kernel) {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "C row mismatch");
    assert_eq!(c.cols(), b.cols(), "C col mismatch");
    match kernel {
        Kernel::Naive => naive(c, a, b),
        Kernel::Ikj => ikj(c, a, b),
        Kernel::Blocked(tile) => blocked(c, a, b, tile.max(1)),
    }
}

/// `A·B` into a fresh matrix with the default kernel.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_acc(&mut c, a, b, Kernel::default());
    c
}

/// Sequential reference product used to verify every distributed run.
pub fn reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_acc(&mut c, a, b, Kernel::Blocked(64));
    c
}

fn naive(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a[(i, l)] * b[(l, j)];
            }
            c[(i, j)] += acc;
        }
    }
}

fn ikj(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        for l in 0..k {
            let aval = a[(i, l)];
            if aval == 0.0 {
                continue;
            }
            let brow = b.row(l);
            let crow = &mut c.as_mut_slice()[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += aval * bv;
            }
        }
    }
}

fn blocked(c: &mut Matrix, a: &Matrix, b: &Matrix, tile: usize) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i0 in (0..m).step_by(tile) {
        let imax = (i0 + tile).min(m);
        for l0 in (0..k).step_by(tile) {
            let lmax = (l0 + tile).min(k);
            for j0 in (0..n).step_by(tile) {
                let jmax = (j0 + tile).min(n);
                for i in i0..imax {
                    for l in l0..lmax {
                        let aval = a[(i, l)];
                        let brow = &b.row(l)[j0..jmax];
                        let crow = &mut c.as_mut_slice()[i * n + j0..i * n + jmax];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aval * bv;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels() -> [Kernel; 4] {
        [
            Kernel::Naive,
            Kernel::Ikj,
            Kernel::Blocked(4),
            Kernel::Blocked(64),
        ]
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::random(9, 9, 3);
        let i = Matrix::identity(9);
        for k in kernels() {
            let mut c = Matrix::zeros(9, 9);
            gemm_acc(&mut c, &a, &i, k);
            assert!(c.max_abs_diff(&a) < 1e-12, "kernel {k:?}");
        }
    }

    #[test]
    fn kernels_agree_on_rectangular_shapes() {
        let a = Matrix::random(7, 13, 1);
        let b = Matrix::random(13, 5, 2);
        let mut base = Matrix::zeros(7, 5);
        gemm_acc(&mut base, &a, &b, Kernel::Naive);
        for k in kernels() {
            let mut c = Matrix::zeros(7, 5);
            gemm_acc(&mut c, &a, &b, k);
            assert!(c.max_abs_diff(&base) < 1e-10, "kernel {k:?}");
        }
    }

    #[test]
    fn gemm_accumulates_rather_than_overwrites() {
        let a = Matrix::identity(3);
        let b = Matrix::identity(3);
        let mut c = Matrix::from_fn(3, 3, |_, _| 1.0);
        gemm_acc(&mut c, &a, &b, Kernel::Ikj);
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(c[(0, 1)], 1.0);
    }

    #[test]
    fn known_small_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }
}
