//! Dense matrices, blocked partitioning, and local GEMM kernels.
//!
//! Every distributed algorithm in the paper decomposes the global
//! `n × n` matrices into sub-blocks, row groups, or column groups, ships
//! those around a hypercube, and multiplies the local pieces. This crate
//! supplies:
//!
//! * [`Matrix`] — an owned row-major `f64` matrix,
//! * [`gemm`] — local multiplication kernels (naive `ijk`, cache-friendly
//!   `ikj`, tiled, and the packed register-tiled fast path), all with
//!   accumulate (`C += A·B`) forms,
//! * [`pack`] / [`microkernel`] / [`pool`] — the packed kernel's panel
//!   layouts, runtime-dispatched register-tiled microkernels (AVX2+FMA
//!   `6×8` with a portable `4×8` fallback), and in-tree thread/buffer
//!   pools,
//! * [`tune`] — cache detection, blocking-parameter sweeps, and the
//!   persisted tuning file behind `cubemm tune-kernel`,
//! * [`partition`] — the exact block/group layouts the paper's algorithms
//!   assume initially (Figures 1, 8, 9) and their inverses for
//!   reassembling distributed results.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod abft;
pub mod gemm;
pub mod matrix;
pub mod microkernel;
pub mod pack;
pub mod partition;
pub mod pool;
pub mod tune;

pub use matrix::Matrix;
