//! Dense matrices, blocked partitioning, and local GEMM kernels.
//!
//! Every distributed algorithm in the paper decomposes the global
//! `n × n` matrices into sub-blocks, row groups, or column groups, ships
//! those around a hypercube, and multiplies the local pieces. This crate
//! supplies:
//!
//! * [`Matrix`] — an owned row-major `f64` matrix,
//! * [`gemm`] — local multiplication kernels (naive `ijk`, cache-friendly
//!   `ikj`, and tiled), all with accumulate (`C += A·B`) forms,
//! * [`partition`] — the exact block/group layouts the paper's algorithms
//!   assume initially (Figures 1, 8, 9) and their inverses for
//!   reassembling distributed results.

pub mod gemm;
pub mod matrix;
pub mod partition;

pub use matrix::Matrix;
