//! Deterministic property sweeps for matrices, partitions, and kernels
//! (formerly proptest strategies; now seeded reproducible loops so the
//! workspace needs no external crates).

use cubemm_dense::gemm::{gemm_acc, matmul, Kernel};
use cubemm_dense::{partition, Matrix};

fn kernels() -> Vec<Kernel> {
    let mut ks = vec![Kernel::Naive, Kernel::Ikj];
    ks.extend([1usize, 2, 3, 5, 8, 15].map(Kernel::Blocked));
    // The packed path at every threading level the property sweeps use,
    // plus deliberately awkward tile sizes (not multiples of either
    // register tile's mr/nr, kc smaller than k, nc smaller than n).
    ks.push(Kernel::packed());
    ks.extend([2usize, 4].map(Kernel::packed_mt));
    ks.push(Kernel::Packed {
        mc: 5,
        kc: 3,
        nc: 7,
        threads: 2,
    });
    ks
}

/// Ragged shapes: nothing divides the register tiles (scalar 4×8 or
/// AVX2 6×8) or the default cache blocks, plus exact-tile shapes for
/// both `mr` values and empty/degenerate extents.
const SHAPES: [(usize, usize, usize); 13] = [
    (1, 1, 1),
    (2, 3, 4),
    (5, 5, 5),
    (7, 11, 3),
    (11, 8, 11),
    (4, 8, 8),
    (6, 8, 8),
    (12, 5, 16),
    (13, 17, 9),
    (19, 23, 25),
    (1, 19, 1),
    (0, 5, 3),
    (3, 0, 0),
];

#[test]
fn kernels_agree_with_naive() {
    for (case, (m, k, n)) in SHAPES.into_iter().enumerate() {
        let seed = case as u64 * 131;
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let mut want = Matrix::zeros(m, n);
        gemm_acc(&mut want, &a, &b, Kernel::Naive);
        for kernel in kernels() {
            let mut got = Matrix::zeros(m, n);
            gemm_acc(&mut got, &a, &b, kernel);
            assert!(
                got.max_abs_diff(&want) < 1e-9,
                "{kernel:?} disagrees at {m}x{k}x{n}"
            );
        }
    }
}

#[test]
fn kernels_accumulate_into_nonzero_c() {
    // gemm_acc must add to C, not overwrite it, on every kernel path.
    let (m, k, n) = (9, 14, 21);
    let a = Matrix::random(m, k, 71);
    let b = Matrix::random(k, n, 72);
    let c0 = Matrix::random(m, n, 73);
    let mut want = c0.clone();
    gemm_acc(&mut want, &a, &b, Kernel::Naive);
    for kernel in kernels() {
        let mut got = c0.clone();
        gemm_acc(&mut got, &a, &b, kernel);
        assert!(
            got.max_abs_diff(&want) < 1e-9,
            "{kernel:?} does not accumulate correctly"
        );
    }
}

#[test]
fn packed_kernel_is_deterministic_across_thread_counts() {
    // The packed path owes bitwise-identical results regardless of the
    // thread count: each C element is accumulated by exactly one 2-D
    // tile job in a fixed kc-block order (see tests/determinism.rs for
    // the cross-microkernel half of the contract).
    for (case, (m, k, n)) in SHAPES.into_iter().enumerate() {
        let seed = 900 + case as u64;
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let mut want = Matrix::zeros(m, n);
        gemm_acc(&mut want, &a, &b, Kernel::packed());
        for threads in [2usize, 3, 4, 8] {
            let mut got = Matrix::zeros(m, n);
            gemm_acc(&mut got, &a, &b, Kernel::packed_mt(threads));
            assert_eq!(
                got, want,
                "packed kernel drifted at {m}x{k}x{n} with {threads} threads"
            );
        }
    }
}

#[test]
fn matmul_distributes_over_addition() {
    for n in 1usize..10 {
        let seed = n as u64 * 977;
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed + 1);
        let c = Matrix::random(n, n, seed + 2);
        let mut b_plus_c = b.clone();
        b_plus_c.add_assign(&c);
        let lhs = matmul(&a, &b_plus_c);
        let mut rhs = matmul(&a, &b);
        rhs.add_assign(&matmul(&a, &c));
        assert!(lhs.max_abs_diff(&rhs) < 1e-10, "n = {n}");
    }
}

#[test]
fn transpose_reverses_products() {
    // (A·B)^T = B^T·A^T
    for n in 1usize..10 {
        let seed = n as u64 * 733 + 5;
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed + 1);
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        assert!(lhs.max_abs_diff(&rhs) < 1e-10, "n = {n}");
    }
}

#[test]
fn square_partition_tiles_exactly() {
    for q_exp in 0u32..3 {
        for scale in 1usize..5 {
            let q = 1usize << q_exp;
            let n = q * scale;
            let m = Matrix::random(n, n, (q * 100 + scale) as u64);
            let back = partition::assemble_square(n, q, |i, j| partition::square(&m, q, i, j));
            assert_eq!(back, m, "q = {q}, n = {n}");
        }
    }
}

#[test]
fn row_col_groups_partition_exactly() {
    for groups in 1usize..6 {
        for scale in 1usize..5 {
            let n = groups * scale;
            let m = Matrix::random(n, n, (groups * 31 + scale) as u64);
            let rows: Vec<Matrix> = (0..groups)
                .map(|i| partition::row_group(&m, groups, i))
                .collect();
            assert_eq!(partition::stack_rows(&rows), m.clone());
            let cols: Vec<Matrix> = (0..groups)
                .map(|j| partition::col_group(&m, groups, j))
                .collect();
            assert_eq!(partition::concat_cols(&cols), m);
        }
    }
}

#[test]
fn wide_and_tall_layouts_are_transposes() {
    for q_exp in 0u32..2 {
        for scale in 1usize..4 {
            let q = 1usize << q_exp;
            let n = q * q * scale;
            let m = Matrix::random(n, n, (q * 17 + scale) as u64);
            let mt = m.transpose();
            for k in 0..q {
                for f in 0..q * q {
                    let w = partition::wide(&m, q, k, f);
                    let t = partition::tall(&mt, q, f, k);
                    assert_eq!(w, t.transpose());
                }
            }
        }
    }
}

#[test]
fn payload_roundtrip_arbitrary() {
    for r in [1usize, 2, 5, 11] {
        for c in [1usize, 3, 7, 11] {
            let m = Matrix::random(r, c, (r * 13 + c) as u64);
            let p = m.to_payload();
            assert_eq!(Matrix::from_payload(r, c, &p), m);
        }
    }
}
