//! Property-based tests for matrices, partitions, and kernels.

use cubemm_dense::gemm::{gemm_acc, matmul, Kernel};
use cubemm_dense::{partition, Matrix};
use proptest::prelude::*;

fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    prop_oneof![
        Just(Kernel::Naive),
        Just(Kernel::Ikj),
        (1usize..16).prop_map(Kernel::Blocked),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernels_agree_with_naive(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        seed in 0u64..1000,
        kernel in kernel_strategy(),
    ) {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let mut want = Matrix::zeros(m, n);
        gemm_acc(&mut want, &a, &b, Kernel::Naive);
        let mut got = Matrix::zeros(m, n);
        gemm_acc(&mut got, &a, &b, kernel);
        prop_assert!(got.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn matmul_distributes_over_addition(
        n in 1usize..10,
        seed in 0u64..1000,
    ) {
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed + 1);
        let c = Matrix::random(n, n, seed + 2);
        let mut b_plus_c = b.clone();
        b_plus_c.add_assign(&c);
        let lhs = matmul(&a, &b_plus_c);
        let mut rhs = matmul(&a, &b);
        rhs.add_assign(&matmul(&a, &c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }

    #[test]
    fn transpose_reverses_products(
        n in 1usize..10,
        seed in 0u64..1000,
    ) {
        // (A·B)^T = B^T·A^T
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed + 1);
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }

    #[test]
    fn square_partition_tiles_exactly(
        q_exp in 0u32..3,
        scale in 1usize..5,
        seed in 0u64..1000,
    ) {
        let q = 1usize << q_exp;
        let n = q * scale;
        let m = Matrix::random(n, n, seed);
        let back = partition::assemble_square(n, q, |i, j| partition::square(&m, q, i, j));
        prop_assert_eq!(back, m);
    }

    #[test]
    fn row_col_groups_partition_exactly(
        groups in 1usize..6,
        scale in 1usize..5,
        seed in 0u64..1000,
    ) {
        let n = groups * scale;
        let m = Matrix::random(n, n, seed);
        let rows: Vec<Matrix> = (0..groups).map(|i| partition::row_group(&m, groups, i)).collect();
        prop_assert_eq!(partition::stack_rows(&rows), m.clone());
        let cols: Vec<Matrix> = (0..groups).map(|j| partition::col_group(&m, groups, j)).collect();
        prop_assert_eq!(partition::concat_cols(&cols), m);
    }

    #[test]
    fn wide_and_tall_layouts_are_transposes(
        q_exp in 0u32..2,
        scale in 1usize..4,
        seed in 0u64..1000,
    ) {
        let q = 1usize << q_exp;
        let n = q * q * scale;
        let m = Matrix::random(n, n, seed);
        let mt = m.transpose();
        for k in 0..q {
            for f in 0..q * q {
                let w = partition::wide(&m, q, k, f);
                let t = partition::tall(&mt, q, f, k);
                prop_assert_eq!(w, t.transpose());
            }
        }
    }

    #[test]
    fn payload_roundtrip_arbitrary(
        r in 1usize..12,
        c in 1usize..12,
        seed in 0u64..1000,
    ) {
        let m = Matrix::random(r, c, seed);
        let p = m.to_payload();
        prop_assert_eq!(Matrix::from_payload(r, c, &p), m);
    }
}
