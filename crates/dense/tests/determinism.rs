//! Cross-feature determinism suite for the packed GEMM.
//!
//! The contract (DESIGN.md §9): for a fixed `kc` split, the packed
//! product is bitwise identical
//!
//! 1. across **thread counts** (each C microtile has exactly one
//!    writer; scheduling picks who computes, never what),
//! 2. across **microkernel implementations** (scalar 4×8 and AVX2 6×8
//!    both accumulate each element as one correctly-rounded FMA chain
//!    in ascending k — tile shape and mc/nc never touch the bits).
//!
//! The SIMD half is `#[cfg]`-gated on what the host can run, so CI
//! exercises whichever paths the runner supports; the scalar fallback
//! is additionally pinned by a CUBEMM_FORCE_SCALAR=1 run of this same
//! suite (see .github/workflows/ci.yml).

use cubemm_dense::gemm::{gemm_acc_with_microkernel, Kernel};
use cubemm_dense::microkernel::MicrokernelImpl;
use cubemm_dense::{abft, Matrix};

/// Every microkernel the host can execute.
fn impls() -> Vec<MicrokernelImpl> {
    let mut v = vec![MicrokernelImpl::Scalar];
    if MicrokernelImpl::detect() == MicrokernelImpl::Avx2 {
        v.push(MicrokernelImpl::Avx2);
    }
    v
}

/// The ragged/edge-padded shape set: exact tiles for both `mr` values
/// (4 and 6), single-row/column spills, primes, and empties.
const SHAPES: [(usize, usize, usize); 12] = [
    (1, 1, 1),
    (4, 8, 8),
    (6, 8, 8),
    (5, 5, 5),
    (7, 11, 3),
    (12, 5, 16),
    (13, 17, 9),
    (19, 23, 25),
    (24, 16, 32),
    (1, 19, 1),
    (0, 5, 3),
    (3, 0, 0),
];

fn packed(threads: usize) -> Kernel {
    // Explicit blocking so the test is immune to an ambient tuning file:
    // kc pinned (the one parameter that affects bits), mc/nc awkward on
    // purpose (they must not affect bits).
    Kernel::Packed {
        mc: 10,
        kc: 7,
        nc: 20,
        threads,
    }
}

#[test]
fn simd_and_scalar_agree_bitwise_on_all_shapes() {
    for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
        let seed = 4000 + case as u64;
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let mut want = Matrix::zeros(m, n);
        gemm_acc_with_microkernel(&mut want, &a, &b, packed(1), MicrokernelImpl::Scalar);
        for mk in impls() {
            for threads in [1usize, 2, 4, 8] {
                let mut got = Matrix::zeros(m, n);
                gemm_acc_with_microkernel(&mut got, &a, &b, packed(threads), mk);
                assert_eq!(
                    got, want,
                    "{mk:?} drifted at {m}x{k}x{n}, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn default_blocking_is_bitwise_stable_across_impls_and_threads() {
    // Same property through the public default path (mc/kc/nc = 0):
    // the static defaults share kc across impls precisely so this holds
    // on untuned hosts (no tuning file exists in the test cwd, so the
    // static defaults are what resolve).
    let (m, k, n) = (37, 29, 53);
    let a = Matrix::random(m, k, 77);
    let b = Matrix::random(k, n, 78);
    let mut want = Matrix::zeros(m, n);
    gemm_acc_with_microkernel(&mut want, &a, &b, Kernel::packed(), MicrokernelImpl::Scalar);
    for mk in impls() {
        for threads in [1usize, 3, 8] {
            let mut got = Matrix::zeros(m, n);
            gemm_acc_with_microkernel(&mut got, &a, &b, Kernel::packed_mt(threads), mk);
            assert_eq!(got, want, "{mk:?} with {threads} threads");
        }
    }
}

#[cfg(not(miri))]
#[test]
fn determinism_holds_above_the_parallel_threshold() {
    // The shapes above all take the small-product serial fast path, so
    // also pin a product big enough (m·k·n > 2^24) that requesting
    // threads really fans out over the pool. Ragged on every dimension.
    let (m, k, n) = (264, 262, 291);
    assert!(m * k * n > cubemm_dense::gemm::PAR_MIN_ELEMS);
    let a = Matrix::random(m, k, 31);
    let b = Matrix::random(k, n, 32);
    let mut want = Matrix::zeros(m, n);
    gemm_acc_with_microkernel(&mut want, &a, &b, Kernel::packed(), MicrokernelImpl::Scalar);
    for mk in impls() {
        for threads in [1usize, 2, 4, 8] {
            let mut got = Matrix::zeros(m, n);
            gemm_acc_with_microkernel(&mut got, &a, &b, Kernel::packed_mt(threads), mk);
            assert_eq!(got, want, "{mk:?} with {threads} threads");
        }
    }
}

#[test]
fn abft_augmented_frames_ride_the_contract() {
    // The Huang-Abraham path multiplies checksum-augmented frames with
    // the same packed kernel, then verifies residuals against a
    // tolerance — so ABFT verdicts must not depend on the host's
    // microkernel or thread count either. Bitwise-identical augmented
    // products make that trivially true.
    let na = 21;
    let a = Matrix::random(na, na, 55);
    let b = Matrix::random(na, na, 56);
    let (af, bf) = abft::augment(&a, &b, na + 1);
    let mut want = Matrix::zeros(na + 1, na + 1);
    gemm_acc_with_microkernel(&mut want, &af, &bf, packed(1), MicrokernelImpl::Scalar);
    for mk in impls() {
        for threads in [1usize, 4] {
            let mut got = Matrix::zeros(na + 1, na + 1);
            gemm_acc_with_microkernel(&mut got, &af, &bf, packed(threads), mk);
            assert_eq!(got, want, "{mk:?} with {threads} threads");
            let mut cf = got;
            let tol = abft::default_tolerance(&cf);
            assert_eq!(
                abft::verify_and_correct(&mut cf, na, tol),
                abft::Verdict::Clean,
            );
            assert_eq!(abft::strip(&cf, na), abft::strip(&want, na));
        }
    }
}

#[test]
fn force_scalar_env_is_respected() {
    // In the ordinary suite run this pins active() == detect(); in the
    // CI forced-scalar run (CUBEMM_FORCE_SCALAR=1) it proves the
    // override actually downgraded dispatch, so the fallback path is
    // always exercised somewhere.
    let forced = std::env::var("CUBEMM_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0");
    if forced {
        assert_eq!(MicrokernelImpl::active(), MicrokernelImpl::Scalar);
    } else {
        assert_eq!(MicrokernelImpl::active(), MicrokernelImpl::detect());
    }
}
