//! `cubemm` — command-line front end for the simulated-hypercube matrix
//! multiplication workspace.
//!
//! ```text
//! cubemm list  [n] [p]                     applicability of every algorithm
//! cubemm run   --algo A --n N --p P [...]  one verified simulated run
//! cubemm sweep --n N [--p P1,P2,...]       all algorithms across machines
//! cubemm regions [--port one|multi] [--ts X] [--tw Y]
//!                                          Figure 13/14-style region map
//! cubemm analyze <algo|all> [--n N] [--p P] [--port one|multi|both]
//!                                          static schedule certification
//! cubemm serve [--workers N] [--queue N] [--node-budget N] [--socket PATH]
//!                                          long-lived JSON-lines multiply
//!                                          service with admission control
//! cubemm chaos <algo|all> [--seed S] [--runs N] [--repro-dir DIR]
//!                                          seeded coverage-guided fault
//!                                          campaign with shrunk repros
//! cubemm tune-kernel [--n N] [--reps R] [--threads T] [--full]
//!                    [--out FILE] [--dry-run]
//!                                          sweep packed-GEMM blocking
//!                                          params, persist the winner
//! ```

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        Some("list") => commands::list(&argv[1..]),
        Some("run") => commands::run(&argv[1..]),
        Some("sweep") => commands::sweep(&argv[1..]),
        Some("regions") => commands::regions(&argv[1..]),
        Some("analyze") => commands::analyze(&argv[1..]),
        Some("serve") => commands::serve(&argv[1..]),
        Some("chaos") => commands::chaos(&argv[1..]),
        Some("tune-kernel") => commands::tune_kernel(&argv[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            0
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n\n{}", commands::USAGE);
            2
        }
    };
    std::process::exit(code);
}
