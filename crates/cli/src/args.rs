//! Minimal `--flag value` argument parsing (no external dependencies —
//! the workspace's dependency policy is documented in DESIGN.md).

use std::collections::HashMap;

/// Parsed `--key value` flags plus positional arguments. Repeating a
/// flag accumulates every value (used by the `--fault-*` family); the
/// scalar accessors read the last occurrence.
pub struct Args {
    flags: HashMap<String, Vec<String>>,
    positional: Vec<String>,
}

impl Args {
    /// Parses `argv`; every token starting with `--` consumes the next
    /// token as its value.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        Args::parse_with_bools(argv, &[])
    }

    /// [`Args::parse`], except the keys listed in `bools` are boolean
    /// switches: their presence records `"true"` without consuming the
    /// next token.
    pub fn parse_with_bools(argv: &[String], bools: &[&str]) -> Result<Args, String> {
        let mut flags: HashMap<String, Vec<String>> = HashMap::new();
        let mut positional = Vec::new();
        let mut it = argv.iter();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let val = if bools.contains(&key) {
                    "true".to_string()
                } else {
                    it.next()
                        .ok_or_else(|| format!("flag --{key} needs a value"))?
                        .clone()
                };
                flags.entry(key.to_string()).or_default().push(val);
            } else {
                positional.push(tok.clone());
            }
        }
        Ok(Args { flags, positional })
    }

    /// Whether a flag appeared at all (boolean switches).
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Positional argument `idx`, parsed.
    pub fn positional<T: std::str::FromStr>(&self, idx: usize) -> Option<T> {
        self.positional.get(idx).and_then(|s| s.parse().ok())
    }

    /// Flag value, parsed, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.raw(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for --{key}")),
        }
    }

    /// Required flag value, parsed.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let v = self
            .raw(key)
            .ok_or_else(|| format!("missing required flag --{key}"))?;
        v.parse()
            .map_err(|_| format!("invalid value {v:?} for --{key}"))
    }

    /// The raw string value of a flag's last occurrence, if present.
    pub fn raw(&self, key: &str) -> Option<&str> {
        self.flags
            .get(key)
            .and_then(|vs| vs.last())
            .map(String::as_str)
    }

    /// Every raw value of a repeatable flag, in order of appearance.
    pub fn raw_all(&self, key: &str) -> &[String] {
        self.flags.get(key).map_or(&[], Vec::as_slice)
    }
}

/// Parses `one`/`multi` (with a few aliases) into a port model.
pub fn parse_port(s: Option<&str>) -> Result<cubemm_simnet::PortModel, String> {
    match s.unwrap_or("one") {
        "one" | "one-port" | "1" => Ok(cubemm_simnet::PortModel::OnePort),
        "multi" | "multi-port" | "all" => Ok(cubemm_simnet::PortModel::MultiPort),
        other => Err(format!("unknown port model {other:?} (use one|multi)")),
    }
}

/// Parses `threaded`/`event` into an execution engine. Absent flag
/// means the event default (single-threaded virtual-clock scheduler —
/// identical results to threaded, and the engine that scales to large
/// p); `--engine threaded` opts back into one OS thread per node.
pub fn parse_engine(s: Option<&str>) -> Result<cubemm_simnet::Engine, String> {
    match s {
        None => Ok(cubemm_simnet::Engine::default()),
        Some(v) => v.parse(),
    }
}

/// Parses `naive | ikj | blocked[:TILE] | packed[:THREADS]` into a local
/// GEMM kernel. Absent flag means the default (packed, single-threaded);
/// `packed:0` sizes the thread count to the host automatically.
pub fn parse_kernel(s: Option<&str>) -> Result<cubemm_dense::gemm::Kernel, String> {
    use cubemm_dense::gemm::Kernel;
    let Some(s) = s else {
        return Ok(Kernel::default());
    };
    let (name, arg) = match s.split_once(':') {
        Some((n, a)) => (n, Some(a)),
        None => (s, None),
    };
    let num = |a: &str| {
        a.parse::<usize>()
            .map_err(|_| format!("--kernel {s:?}: invalid number {a:?}"))
    };
    match (name, arg) {
        ("naive", None) => Ok(Kernel::Naive),
        ("ikj", None) => Ok(Kernel::Ikj),
        ("blocked", None) => Ok(Kernel::Blocked(64)),
        ("blocked", Some(a)) => {
            let tile = num(a)?;
            if tile == 0 {
                return Err(format!("--kernel {s:?}: tile must be positive"));
            }
            Ok(Kernel::Blocked(tile))
        }
        ("packed", None) => Ok(Kernel::packed()),
        ("packed", Some(a)) => Ok(Kernel::packed_mt(num(a)?)),
        _ => Err(format!(
            "unknown kernel {s:?} (use naive|ikj|blocked[:TILE]|packed[:THREADS])"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&argv("64 --n 32 --port multi rest")).unwrap();
        assert_eq!(a.positional::<usize>(0), Some(64));
        assert_eq!(a.get_or::<usize>("n", 0).unwrap(), 32);
        assert_eq!(a.raw("port"), Some("multi"));
        assert_eq!(a.positional::<String>(1), Some("rest".to_string()));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv("--n")).is_err());
    }

    #[test]
    fn boolean_switches_consume_no_value() {
        let a = Args::parse_with_bools(&argv("--abft --n 8"), &["abft"]).unwrap();
        assert!(a.has("abft"));
        assert!(!a.has("n-missing"));
        assert_eq!(a.get_or::<usize>("n", 0).unwrap(), 8);
        // Without the bool registration, --abft would swallow `--n`.
        let b = Args::parse(&argv("--abft --n 8")).unwrap();
        assert_eq!(b.raw("abft"), Some("--n"));
    }

    #[test]
    fn require_and_defaults() {
        let a = Args::parse(&argv("--n 8")).unwrap();
        assert_eq!(a.require::<usize>("n").unwrap(), 8);
        assert!(a.require::<usize>("p").is_err());
        assert_eq!(a.get_or::<f64>("ts", 150.0).unwrap(), 150.0);
    }

    #[test]
    fn repeated_flags_accumulate() {
        let a = Args::parse(&argv("--fault-link 0:1 --fault-link 2:3 --n 4 --n 8")).unwrap();
        assert_eq!(
            a.raw_all("fault-link"),
            ["0:1".to_string(), "2:3".to_string()]
        );
        assert_eq!(a.get_or::<usize>("n", 0).unwrap(), 8); // last wins
        assert!(a.raw_all("fault-drop").is_empty());
    }

    #[test]
    fn port_parsing() {
        assert!(parse_port(Some("one")).is_ok());
        assert!(parse_port(Some("multi")).is_ok());
        assert!(parse_port(None).is_ok());
        assert!(parse_port(Some("dual")).is_err());
    }

    #[test]
    fn engine_parsing() {
        use cubemm_simnet::Engine;
        assert_eq!(parse_engine(None).unwrap(), Engine::Event);
        assert_eq!(parse_engine(Some("threaded")).unwrap(), Engine::Threaded);
        assert_eq!(parse_engine(Some("event")).unwrap(), Engine::Event);
        assert!(parse_engine(Some("fiber")).is_err());
    }

    #[test]
    fn kernel_parsing() {
        use cubemm_dense::gemm::Kernel;
        assert_eq!(parse_kernel(None).unwrap(), Kernel::default());
        assert_eq!(parse_kernel(Some("naive")).unwrap(), Kernel::Naive);
        assert_eq!(parse_kernel(Some("ikj")).unwrap(), Kernel::Ikj);
        assert_eq!(parse_kernel(Some("blocked")).unwrap(), Kernel::Blocked(64));
        assert_eq!(
            parse_kernel(Some("blocked:32")).unwrap(),
            Kernel::Blocked(32)
        );
        assert_eq!(parse_kernel(Some("packed")).unwrap(), Kernel::packed());
        assert_eq!(
            parse_kernel(Some("packed:4")).unwrap(),
            Kernel::packed_mt(4)
        );
        assert_eq!(
            parse_kernel(Some("packed:0")).unwrap(),
            Kernel::packed_mt(0)
        );
        assert!(parse_kernel(Some("blocked:0")).is_err());
        assert!(parse_kernel(Some("blocked:x")).is_err());
        assert!(parse_kernel(Some("packed:two")).is_err());
        assert!(parse_kernel(Some("simd")).is_err());
        assert!(parse_kernel(Some("naive:3")).is_err());
    }
}
