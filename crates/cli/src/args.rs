//! Minimal `--flag value` argument parsing (no external dependencies —
//! the workspace's dependency policy is documented in DESIGN.md).

use std::collections::HashMap;

/// Parsed `--key value` flags plus positional arguments. Repeating a
/// flag accumulates every value (used by the `--fault-*` family); the
/// scalar accessors read the last occurrence.
pub struct Args {
    flags: HashMap<String, Vec<String>>,
    positional: Vec<String>,
}

impl Args {
    /// Parses `argv`; every token starting with `--` consumes the next
    /// token as its value.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags: HashMap<String, Vec<String>> = HashMap::new();
        let mut positional = Vec::new();
        let mut it = argv.iter();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let val = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                flags.entry(key.to_string()).or_default().push(val.clone());
            } else {
                positional.push(tok.clone());
            }
        }
        Ok(Args { flags, positional })
    }

    /// Positional argument `idx`, parsed.
    pub fn positional<T: std::str::FromStr>(&self, idx: usize) -> Option<T> {
        self.positional.get(idx).and_then(|s| s.parse().ok())
    }

    /// Flag value, parsed, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.raw(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for --{key}")),
        }
    }

    /// Required flag value, parsed.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let v = self
            .raw(key)
            .ok_or_else(|| format!("missing required flag --{key}"))?;
        v.parse()
            .map_err(|_| format!("invalid value {v:?} for --{key}"))
    }

    /// The raw string value of a flag's last occurrence, if present.
    pub fn raw(&self, key: &str) -> Option<&str> {
        self.flags
            .get(key)
            .and_then(|vs| vs.last())
            .map(String::as_str)
    }

    /// Every raw value of a repeatable flag, in order of appearance.
    pub fn raw_all(&self, key: &str) -> &[String] {
        self.flags.get(key).map_or(&[], Vec::as_slice)
    }
}

/// Parses `one`/`multi` (with a few aliases) into a port model.
pub fn parse_port(s: Option<&str>) -> Result<cubemm_simnet::PortModel, String> {
    match s.unwrap_or("one") {
        "one" | "one-port" | "1" => Ok(cubemm_simnet::PortModel::OnePort),
        "multi" | "multi-port" | "all" => Ok(cubemm_simnet::PortModel::MultiPort),
        other => Err(format!("unknown port model {other:?} (use one|multi)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&argv("64 --n 32 --port multi rest")).unwrap();
        assert_eq!(a.positional::<usize>(0), Some(64));
        assert_eq!(a.get_or::<usize>("n", 0).unwrap(), 32);
        assert_eq!(a.raw("port"), Some("multi"));
        assert_eq!(a.positional::<String>(1), Some("rest".to_string()));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv("--n")).is_err());
    }

    #[test]
    fn require_and_defaults() {
        let a = Args::parse(&argv("--n 8")).unwrap();
        assert_eq!(a.require::<usize>("n").unwrap(), 8);
        assert!(a.require::<usize>("p").is_err());
        assert_eq!(a.get_or::<f64>("ts", 150.0).unwrap(), 150.0);
    }

    #[test]
    fn repeated_flags_accumulate() {
        let a = Args::parse(&argv("--fault-link 0:1 --fault-link 2:3 --n 4 --n 8")).unwrap();
        assert_eq!(
            a.raw_all("fault-link"),
            ["0:1".to_string(), "2:3".to_string()]
        );
        assert_eq!(a.get_or::<usize>("n", 0).unwrap(), 8); // last wins
        assert!(a.raw_all("fault-drop").is_empty());
    }

    #[test]
    fn port_parsing() {
        assert!(parse_port(Some("one")).is_ok());
        assert!(parse_port(Some("multi")).is_ok());
        assert!(parse_port(None).is_ok());
        assert!(parse_port(Some("dual")).is_err());
    }
}
