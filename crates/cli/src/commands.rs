//! The `cubemm` subcommands.

use cubemm_core::{Algorithm, MachineConfig};
use cubemm_dense::{gemm, Matrix};
use cubemm_model::{render_ascii, RegionMap, Sweep};
use cubemm_simnet::CostParams;

use crate::args::{parse_port, Args};

/// Top-level usage text.
pub const USAGE: &str = "\
cubemm — communication-efficient matrix multiplication on simulated hypercubes
(reproduction of Gupta & Sadayappan, SPAA 1994)

USAGE:
  cubemm list [n] [p]            show every algorithm and its applicability
  cubemm run --algo A --n N --p P [--port one|multi] [--ts T] [--tw W]
             [--charge sender|symmetric]
                                 one verified simulated multiplication
  cubemm sweep --n N [--p 4,16,64,512] [--port one|multi] [--ts T] [--tw W]
                                 compare all applicable algorithms
  cubemm regions [--port one|multi] [--ts T] [--tw W]
                                 Figure 13/14-style best-algorithm map
  cubemm help                    this text

Defaults: n=64, p=64, port=one, ts=150, tw=3, charge=sender (the paper's
parameters and accounting).
Algorithms: simple cannon hje berntsen dns diag2d 3dd 3d-all-trans 3d-all
            dns-cannon 3d-all-cannon 3d-all-flat cannon-torus fox
";

fn fail(msg: &str) -> i32 {
    eprintln!("error: {msg}");
    2
}

/// `cubemm list [n] [p]`.
pub fn list(argv: &[String]) -> i32 {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let n: usize = args.positional(0).unwrap_or(64);
    let p: usize = args.positional(1).unwrap_or(64);
    println!("applicability at n = {n}, p = {p}:");
    for algo in Algorithm::ALL.into_iter().chain(Algorithm::EXTENSIONS) {
        match algo.check(n, p) {
            Ok(()) => println!("  {:<14} ok", algo.name()),
            Err(e) => println!("  {:<14} -- {e}", algo.name()),
        }
    }
    0
}

fn machine_from(args: &Args) -> Result<(MachineConfig, f64, f64), String> {
    let ts: f64 = args.get_or("ts", 150.0)?;
    let tw: f64 = args.get_or("tw", 3.0)?;
    let port = parse_port(args.raw("port"))?;
    let mut cfg = MachineConfig::new(port, CostParams { ts, tw });
    match args.raw("charge") {
        None | Some("sender") => {}
        Some("symmetric") => cfg = cfg.with_symmetric_charging(),
        Some(other) => return Err(format!("unknown charge policy {other:?} (sender|symmetric)")),
    }
    Ok((cfg, ts, tw))
}

/// `cubemm run --algo A --n N --p P ...`.
pub fn run(argv: &[String]) -> i32 {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let algo: Algorithm = match args.require::<String>("algo").and_then(|s| {
        s.parse::<Algorithm>()
            .map_err(|e| format!("{e} (see `cubemm help` for the list)"))
    }) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let n: usize = match args.get_or("n", 64) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let p: usize = match args.get_or("p", 64) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let seed: u64 = match args.get_or("seed", 1) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let (cfg, ts, tw) = match machine_from(&args) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };

    if let Err(e) = algo.check(n, p) {
        return fail(&format!("{algo} cannot run n={n} on p={p}: {e}"));
    }
    let a = Matrix::random(n, n, seed);
    let b = Matrix::random(n, n, seed + 1);
    let res = match algo.multiply(&a, &b, p, &cfg) {
        Ok(r) => r,
        Err(e) => return fail(&e.to_string()),
    };
    let err = res.c.max_abs_diff(&gemm::reference(&a, &b));
    println!("{algo}: n = {n}, p = {p}, {} nodes, ts = {ts}, tw = {tw}", cfg.port);
    println!("  verified:              max |Δ| = {err:.2e}");
    println!("  simulated comm time:   {:.1}", res.stats.elapsed);
    println!("  messages injected:     {}", res.stats.total_messages());
    println!("  word·hops moved:       {}", res.stats.total_word_hops());
    println!("  peak words (total):    {}", res.stats.total_peak_words());
    if err > 1e-9 * n as f64 {
        return fail("verification FAILED");
    }
    0
}

/// `cubemm sweep --n N [--p list] ...`.
pub fn sweep(argv: &[String]) -> i32 {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let n: usize = match args.get_or("n", 64) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let (cfg, ts, tw) = match machine_from(&args) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let ps: Vec<usize> = match args.raw("p") {
        None => vec![4, 8, 16, 64, 512],
        Some(list) => match list.split(',').map(|t| t.trim().parse()).collect() {
            Ok(v) => v,
            Err(_) => return fail(&format!("invalid --p list {list:?}")),
        },
    };

    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let reference = gemm::reference(&a, &b);

    println!("sweep: n = {n}, {}, ts = {ts}, tw = {tw}", cfg.port);
    print!("{:<14}", "p =");
    for p in &ps {
        print!("{p:>10}");
    }
    println!();
    for algo in Algorithm::ALL.into_iter().chain(Algorithm::EXTENSIONS) {
        print!("{:<14}", algo.name());
        for &p in &ps {
            match algo.check(n, p) {
                Ok(()) => match algo.multiply(&a, &b, p, &cfg) {
                    Ok(res) => {
                        if res.c.max_abs_diff(&reference) > 1e-9 * n as f64 {
                            return fail(&format!("{algo} produced a wrong product at p={p}"));
                        }
                        print!("{:>10.0}", res.stats.elapsed);
                    }
                    Err(e) => return fail(&e.to_string()),
                },
                Err(_) => print!("{:>10}", "-"),
            }
        }
        println!();
    }
    println!("all runs verified; '-' marks inapplicable shapes");
    0
}

/// `cubemm regions ...`.
pub fn regions(argv: &[String]) -> i32 {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let ts: f64 = match args.get_or("ts", 150.0) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let tw: f64 = match args.get_or("tw", 3.0) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let port = match parse_port(args.raw("port")) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let map = RegionMap::generate(Sweep::default(), port, ts, tw);
    print!("{}", render_ascii(&map));
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn list_runs_clean() {
        assert_eq!(list(&argv("64 64")), 0);
        assert_eq!(list(&argv("")), 0);
    }

    #[test]
    fn run_small_configuration() {
        assert_eq!(run(&argv("--algo 3d-all --n 16 --p 8")), 0);
        assert_eq!(run(&argv("--algo cannon --n 16 --p 16 --port multi")), 0);
    }

    #[test]
    fn run_rejects_bad_input() {
        assert_ne!(run(&argv("--algo nope --n 16 --p 8")), 0);
        assert_ne!(run(&argv("--algo 3d-all --n 15 --p 8")), 0);
        assert_ne!(run(&argv("--n 16")), 0);
    }

    #[test]
    fn sweep_and_regions_run_clean() {
        assert_eq!(sweep(&argv("--n 16 --p 4,8,16")), 0);
        assert_eq!(regions(&argv("--port multi --ts 5 --tw 3")), 0);
    }
}
