//! The `cubemm` subcommands.

use cubemm_core::abft::AbftOutcome;
use cubemm_core::prelude::*;
use cubemm_dense::gemm;
use cubemm_harness::recovery::{multiply_with_recovery, RecoveryError, RecoveryPolicy};
use cubemm_model::{render_ascii, RegionMap, Sweep};
use cubemm_simnet::{ChargePolicy, CorruptKind, Corruption, CostParams, FaultPlan, RunError};

use crate::args::{parse_engine, parse_kernel, parse_port, Args};

/// Top-level usage text.
pub const USAGE: &str = "\
cubemm — communication-efficient matrix multiplication on simulated hypercubes
(reproduction of Gupta & Sadayappan, SPAA 1994)

USAGE:
  cubemm list [n] [p]            show every algorithm and its applicability
  cubemm run --algo A --n N --p P [--port one|multi] [--ts T] [--tw W]
             [--engine threaded|event] [--charge sender|symmetric]
             [--kernel naive|ikj|blocked[:TILE]|packed[:THREADS]]
             [--fault-link A:B] [--fault-degrade A:B:TSF:TWF]
             [--fault-straggler NODE:FACTOR] [--fault-drop FROM:TO:K]
             [--fault-corrupt FROM:TO:K:WORD:DELTA]
             [--fault-flip FROM:TO:K:WORD:BIT] [--fault-crash NODE:STEP]
             [--fault-strict true|false]
             [--fault-plan FILE] [--fault-plan-dump FILE]
             [--abft] [--recover-attempts N]
                                 one verified simulated multiplication;
                                 --fault-* flags repeat, and a faulty run
                                 reports retries/detours/drops and the
                                 extra virtual time against a healthy
                                 baseline re-run
  cubemm sweep --n N [--p 4,16,64,512] [--port one|multi] [--ts T] [--tw W]
               [--engine threaded|event] [--kernel ...] [--jobs N]
                                 compare all applicable algorithms
  cubemm regions [--port one|multi] [--ts T] [--tw W]
                                 Figure 13/14-style best-algorithm map
  cubemm analyze <algo|all> [--n N] [--p P] [--port one|multi|both]
                 [--engine threaded|event] [--jobs N] [--symbolic]
                                 static schedule analysis: prove the compiled
                                 schedule deadlock-free and port/link-legal,
                                 extract its exact (a, b) Table 2 coordinates
                                 by replay, and report per-phase traffic;
                                 `analyze all` sweeps every algorithm over
                                 the default (n, p) grid and fails on any
                                 violation. --symbolic certifies the closed
                                 forms instead: collective schemas and
                                 algorithm compositions are proven against
                                 Tables 1/2 as polynomial identities in n
                                 and 2^d, valid for every p = 2^d at once
                                 (grid replay remains as a spot-check
                                 inside each certificate)
  cubemm serve [--workers N] [--queue N] [--node-budget N] [--socket PATH]
                                 long-lived multiply service: JSON-lines
                                 requests on stdin (or a Unix socket),
                                 one typed JSON response per job; see
                                 DESIGN.md §13 for the protocol
  cubemm chaos <algo|all> [--seed S] [--runs N] [--n N] [--max-entries K]
               [--budget-factor F] [--recover-attempts N]
               [--fail-on corrected] [--repro-dir DIR]
                                 seeded coverage-guided chaos campaign:
                                 randomized fault plans spanning every
                                 fault family run under ABFT + recovery
                                 against invariant oracles (bitwise
                                 product, report sanity, typed-failure
                                 taxonomy, virtual-time budget); any
                                 oracle failure is delta-debugged to a
                                 minimal repro plan, written to
                                 --repro-dir as --fault-plan JSON.
                                 Byte-identical output for a fixed
                                 --seed; `all` also prints aggregate
                                 fault-space coverage. Exit 0 = every
                                 oracle held, 2 = violations (repros
                                 written)
  cubemm tune-kernel [--n 512] [--reps 3] [--threads 1] [--full]
                     [--out FILE] [--dry-run]
                                 sweep the packed kernel's mc/kc/nc blocking
                                 grid (pruned against this host's detected
                                 cache sizes) on an n×n×n product and write
                                 the winner to FILE (default
                                 $CUBEMM_TUNE_FILE or ./cubemm-tune.json);
                                 untuned packed runs load it automatically
                                 when its microkernel matches. --full widens
                                 the grid ~4x; --dry-run prints the table
                                 without writing
  cubemm help                    this text

Defaults: n=64, p=64, port=one, ts=150, tw=3, charge=sender (the paper's
parameters and accounting), kernel=packed (single-threaded; `packed:0`
picks a thread count automatically), engine=event.
The default event engine runs the whole simulated machine on one host
thread under a virtual-clock-ordered scheduler and scales to
p = 4096..65536 nodes. --engine threaded opts into one OS thread per
node (real host concurrency; p capped by the OS thread limit). Results
are bit-identical between the two engines.
A run that cannot progress (e.g. --fault-drop on an algorithm without
retries) is reported as a structured deadlock naming every blocked node,
detected exactly and instantly by the engine's progress ledger (no
watchdog; results are identical at any --jobs value).
--jobs N runs independent sweep/analysis grid points on N worker threads
under a global budget on simulated node threads; output is identical to
--jobs 1 (the default).
--abft runs the multiplication under Huang-Abraham checksum protection:
silent data corruption (--fault-corrupt perturbs word WORD of the K-th
payload crossing the directed edge FROM->TO by DELTA; --fault-flip flips
bit BIT of it) is detected from the product's checksum residuals and
either corrected in place or survived by quarantining the corrupting
link and re-running; a node crash scheduled with --fault-crash (kills
NODE at its STEP-th communication call) is survived by rebooting it.
--recover-attempts N bounds the re-runs (default 4, capped exponential
virtual backoff between attempts). --fault-plan loads a JSON fault plan
(flags stack on top); --fault-plan-dump writes the effective plan.
cubemm serve boots a pool of --workers machines (default 4) and reads
one JSON request per line: {\"id\",\"n\",\"p\",...} with optional algo
(default auto = the Table 2 model's pick), kernel, port, ts, tw, seed,
abft (default true), priority 0-9, deadline (virtual time), attempts,
and faults (a fault-plan object). Each job is answered with exactly one
typed JSON line: ok (with a bit-exact product fingerprint), overloaded
(+retry_after_ms; the --queue bound is strict and excess load is shed
lowest-priority-first), rejected, failed, deadline, or malformed (bad
lines never kill the stream). EOF or SIGTERM stops admission, drains
the queue, and prints a summary to stderr.
Exit codes: 0 = verified product (clean, ABFT-corrected, or recovered);
            2 = usage/run errors, or damage still uncorrectable after
                the --recover-attempts budget;
            3 = deadlock (every live node blocked in a receive);
            4 = serve only: the request stream itself broke (I/O error);
                per-job failures never abort the service.
Algorithms: simple cannon hje berntsen dns diag2d 3dd 3d-all-trans 3d-all
            dns-cannon 3d-all-cannon 3d-all-flat cannon-torus fox
";

fn fail(msg: &str) -> i32 {
    eprintln!("error: {msg}");
    2
}

/// Parses `--jobs N` (default 1 — serial, byte-identical output at any
/// value; see `cubemm_harness::run_grid`).
fn jobs_from(args: &Args) -> Result<usize, String> {
    let jobs: usize = args.get_or("jobs", 1)?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    Ok(jobs)
}

/// `cubemm list [n] [p]`.
pub fn list(argv: &[String]) -> i32 {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let n: usize = args.positional(0).unwrap_or(64);
    let p: usize = args.positional(1).unwrap_or(64);
    println!("applicability at n = {n}, p = {p}:");
    for algo in Algorithm::ALL.into_iter().chain(Algorithm::EXTENSIONS) {
        match algo.check(n, p) {
            Ok(()) => println!("  {:<14} ok", algo.name()),
            Err(e) => println!("  {:<14} -- {e}", algo.name()),
        }
    }
    0
}

fn machine_from(args: &Args) -> Result<(MachineConfig, f64, f64), String> {
    let ts: f64 = args.get_or("ts", 150.0)?;
    let tw: f64 = args.get_or("tw", 3.0)?;
    let charge = match args.raw("charge") {
        None | Some("sender") => ChargePolicy::SenderOnly,
        Some("symmetric") => ChargePolicy::Symmetric,
        Some(other) => {
            return Err(format!(
                "unknown charge policy {other:?} (sender|symmetric)"
            ))
        }
    };
    let cfg = MachineConfig::builder()
        .port(parse_port(args.raw("port"))?)
        .costs(CostParams { ts, tw })
        .kernel(parse_kernel(args.raw("kernel"))?)
        .charge(charge)
        .engine(parse_engine(args.raw("engine"))?)
        .faults(faults_from(args)?)
        .build();
    Ok((cfg, ts, tw))
}

/// Splits a `--fault-*` spec into exactly `n` colon-separated fields.
fn fields<'a>(flag: &str, spec: &'a str, n: usize) -> Result<Vec<&'a str>, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != n {
        return Err(format!(
            "--{flag} {spec:?}: expected {n} colon-separated fields"
        ));
    }
    Ok(parts)
}

fn num<T: std::str::FromStr>(flag: &str, spec: &str, field: &str) -> Result<T, String> {
    field
        .parse()
        .map_err(|_| format!("--{flag} {spec:?}: invalid number {field:?}"))
}

/// Requires `a <-> b` to be a hypercube edge before handing it to the
/// (panicking) `FaultPlan` builders.
fn require_edge(flag: &str, spec: &str, a: usize, b: usize) -> Result<(), String> {
    if (a ^ b).count_ones() != 1 {
        return Err(format!(
            "--{flag} {spec:?}: nodes {a} and {b} are not hypercube neighbors"
        ));
    }
    Ok(())
}

/// Builds the deterministic fault plan from the repeatable `--fault-*`
/// flags (see `USAGE`).
fn faults_from(args: &Args) -> Result<FaultPlan, String> {
    let mut plan = match args.raw("fault-plan") {
        None => FaultPlan::new(),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("--fault-plan {path:?}: {e}"))?;
            FaultPlan::from_json(&text).map_err(|e| format!("--fault-plan {path:?}: {e}"))?
        }
    };
    for spec in args.raw_all("fault-link") {
        let f = fields("fault-link", spec, 2)?;
        let (a, b) = (
            num("fault-link", spec, f[0])?,
            num("fault-link", spec, f[1])?,
        );
        require_edge("fault-link", spec, a, b)?;
        plan = plan.with_dead_link(a, b);
    }
    for spec in args.raw_all("fault-degrade") {
        let f = fields("fault-degrade", spec, 4)?;
        let (a, b) = (
            num("fault-degrade", spec, f[0])?,
            num("fault-degrade", spec, f[1])?,
        );
        let (tsf, twf): (f64, f64) = (
            num("fault-degrade", spec, f[2])?,
            num("fault-degrade", spec, f[3])?,
        );
        require_edge("fault-degrade", spec, a, b)?;
        if !(tsf.is_finite() && tsf > 0.0 && twf.is_finite() && twf > 0.0) {
            return Err(format!(
                "--fault-degrade {spec:?}: factors must be positive and finite"
            ));
        }
        plan = plan.with_degraded_link(a, b, tsf, twf);
    }
    for spec in args.raw_all("fault-straggler") {
        let f = fields("fault-straggler", spec, 2)?;
        let node = num("fault-straggler", spec, f[0])?;
        let slow: f64 = num("fault-straggler", spec, f[1])?;
        if !(slow.is_finite() && slow >= 1.0) {
            return Err(format!(
                "--fault-straggler {spec:?}: slowdown must be finite and >= 1"
            ));
        }
        plan = plan.with_straggler(node, slow);
    }
    for spec in args.raw_all("fault-drop") {
        let f = fields("fault-drop", spec, 3)?;
        plan = plan.with_drop(
            num("fault-drop", spec, f[0])?,
            num("fault-drop", spec, f[1])?,
            num("fault-drop", spec, f[2])?,
        );
    }
    for spec in args.raw_all("fault-corrupt") {
        let f = fields("fault-corrupt", spec, 5)?;
        let (from, to) = (
            num("fault-corrupt", spec, f[0])?,
            num("fault-corrupt", spec, f[1])?,
        );
        require_edge("fault-corrupt", spec, from, to)?;
        let k: u64 = num("fault-corrupt", spec, f[2])?;
        let word: usize = num("fault-corrupt", spec, f[3])?;
        let delta: f64 = num("fault-corrupt", spec, f[4])?;
        if !delta.is_finite() || delta == 0.0 {
            return Err(format!(
                "--fault-corrupt {spec:?}: delta must be finite and non-zero"
            ));
        }
        plan = plan.with_corruption(
            from,
            to,
            k,
            Corruption {
                word,
                kind: CorruptKind::Perturb { delta },
            },
        );
    }
    for spec in args.raw_all("fault-flip") {
        let f = fields("fault-flip", spec, 5)?;
        let (from, to) = (
            num("fault-flip", spec, f[0])?,
            num("fault-flip", spec, f[1])?,
        );
        require_edge("fault-flip", spec, from, to)?;
        let k: u64 = num("fault-flip", spec, f[2])?;
        let word: usize = num("fault-flip", spec, f[3])?;
        let bit: u32 = num("fault-flip", spec, f[4])?;
        if bit > 63 {
            return Err(format!("--fault-flip {spec:?}: bit must be 0..=63"));
        }
        plan = plan.with_corruption(
            from,
            to,
            k,
            Corruption {
                word,
                kind: CorruptKind::BitFlip { bit },
            },
        );
    }
    for spec in args.raw_all("fault-crash") {
        let f = fields("fault-crash", spec, 2)?;
        plan = plan.with_crash(
            num("fault-crash", spec, f[0])?,
            num("fault-crash", spec, f[1])?,
        );
    }
    match args.raw("fault-strict") {
        None => {}
        Some("false") => plan = plan.lenient(),
        Some("true") => plan = plan.strict(),
        Some(other) => {
            return Err(format!(
                "unknown --fault-strict value {other:?} (true|false)"
            ))
        }
    }
    Ok(plan)
}

/// `cubemm run --algo A --n N --p P ...`.
pub fn run(argv: &[String]) -> i32 {
    let args = match Args::parse_with_bools(argv, &["abft"]) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let algo: Algorithm = match args.require::<String>("algo").and_then(|s| {
        s.parse::<Algorithm>()
            .map_err(|e| format!("{e} (see `cubemm help` for the list)"))
    }) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let n: usize = match args.get_or("n", 64) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let p: usize = match args.get_or("p", 64) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let seed: u64 = match args.get_or("seed", 1) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let (cfg, ts, tw) = match machine_from(&args) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    if let Some(path) = args.raw("fault-plan-dump") {
        if let Err(e) = std::fs::write(path, cfg.faults.to_json() + "\n") {
            return fail(&format!("--fault-plan-dump {path:?}: {e}"));
        }
        println!("effective fault plan written to {path}");
    }

    let a = Matrix::random(n, n, seed);
    let b = Matrix::random(n, n, seed + 1);
    if args.has("abft") {
        // ABFT pads to the nearest acceptable order internally, so the
        // raw n is not checked here.
        return run_abft(algo, &a, &b, p, &args, &cfg);
    }

    if let Err(e) = algo.check(n, p) {
        return fail(&format!("{algo} cannot run n={n} on p={p}: {e}"));
    }
    let res = match algo.multiply(&a, &b, p, &cfg) {
        Ok(r) => r,
        Err(AlgoError::Sim(e @ RunError::Deadlock { .. })) => {
            eprintln!("error: {e}");
            return 3;
        }
        Err(e) => return fail(&e.to_string()),
    };
    let err = res.c.max_abs_diff(&gemm::reference(&a, &b));
    println!(
        "{algo}: n = {n}, p = {p}, {} nodes, {} engine, ts = {ts}, tw = {tw}",
        cfg.port, cfg.engine
    );
    println!("  verified:              max |Δ| = {err:.2e}");
    // The same identity `cubemm serve` reports: FNV-1a 64 over the
    // product's bits, for byte-exact comparison across modes.
    println!(
        "  fingerprint:           {}",
        cubemm_serve::fingerprint_hex(&res.c)
    );
    println!("  simulated comm time:   {:.1}", res.stats.elapsed);
    println!("  messages injected:     {}", res.stats.total_messages());
    println!("  word·hops moved:       {}", res.stats.total_word_hops());
    println!("  peak words (total):    {}", res.stats.total_peak_words());
    if !cfg.faults.is_empty() {
        // Re-run the same multiplication on a healthy machine so the
        // report can price the injected faults.
        let mut healthy = cfg.clone();
        healthy.faults = FaultPlan::new();
        let baseline = match algo.multiply(&a, &b, p, &healthy) {
            Ok(r) => r.stats.elapsed,
            Err(e) => return fail(&format!("healthy baseline run failed: {e}")),
        };
        let fp = &cfg.faults;
        println!("  faults:");
        println!(
            "    injected:            {} dead, {} degraded, {} stragglers, {} drops ({})",
            fp.dead_links().count(),
            fp.degraded_links().count(),
            fp.stragglers().count(),
            fp.scheduled_drops().count(),
            if fp.is_strict() { "strict" } else { "lenient" },
        );
        println!("    retries:             {}", res.stats.total_retries());
        println!("    detour hops:         {}", res.stats.total_detour_hops());
        println!("    messages dropped:    {}", res.stats.total_dropped());
        println!(
            "    vs healthy run:      {baseline:.1} -> {:.1} ({:+.1})",
            res.stats.elapsed,
            res.stats.elapsed - baseline,
        );
    }
    if err > 1e-9 * n as f64 {
        return fail("verification FAILED");
    }
    0
}

/// The `--abft` arm of `cubemm run`: checksum-protected multiplication
/// under quarantine-and-rerun recovery (see `USAGE` for the exit-code
/// contract).
fn run_abft(
    algo: Algorithm,
    a: &Matrix,
    b: &Matrix,
    p: usize,
    args: &Args,
    cfg: &MachineConfig,
) -> i32 {
    let n = a.rows();
    let attempts: usize = match args.get_or("recover-attempts", 4) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    if attempts == 0 {
        return fail("--recover-attempts must be at least 1");
    }
    let policy = RecoveryPolicy {
        max_attempts: attempts,
        ..RecoveryPolicy::default()
    };
    let (res, report) = match multiply_with_recovery(algo, a, b, p, cfg, &policy) {
        Ok(v) => v,
        Err(RecoveryError::Fatal(AlgoError::Sim(e @ RunError::Deadlock { .. }))) => {
            eprintln!("error: {e}");
            return 3;
        }
        Err(e) => return fail(&e.to_string()),
    };
    let err = res.c.max_abs_diff(&gemm::reference(a, b));
    println!(
        "{algo}: n = {n} (ABFT-augmented to {}), p = {p}, {} nodes, ts = {}, tw = {}",
        res.augmented, cfg.port, cfg.cost.ts, cfg.cost.tw
    );
    println!("  verified:              max |Δ| = {err:.2e}");
    match &res.outcome {
        AbftOutcome::Clean => {
            println!("  abft outcome:          clean (no corruption detected)");
        }
        AbftOutcome::Corrected {
            entries,
            block,
            node,
        } => {
            print!(
                "  abft outcome:          corrected {} entr{}",
                entries.len(),
                if entries.len() == 1 { "y" } else { "ies" }
            );
            if let (Some((bi, bj)), Some(node)) = (block, node) {
                print!(" in block ({bi},{bj}) — suspect node {node}");
            }
            println!();
        }
        AbftOutcome::Uncorrectable { .. } => {
            // multiply_with_recovery never returns an untrustworthy
            // product; keep the arm so the match stays exhaustive.
            return fail("internal error: recovery returned an uncorrectable product");
        }
    }
    println!(
        "  attempts:              {} (virtual backoff {:.1})",
        report.attempts, report.backoff_spent
    );
    if !report.backoff_delays.is_empty() {
        let schedule = report
            .backoff_delays
            .iter()
            .map(|d| format!("{d:.1}"))
            .collect::<Vec<_>>()
            .join(" -> ");
        println!("    backoff schedule:    {schedule}");
    }
    for act in &report.actions {
        println!("    recovery:            {act}");
    }
    println!(
        "  fingerprint:           {}",
        cubemm_serve::fingerprint_hex(&res.c)
    );
    println!(
        "  payloads corrupted:    {} (final attempt)",
        res.stats.total_corrupted()
    );
    println!(
        "  simulated comm time:   {:.1} (final attempt)",
        res.stats.elapsed
    );
    if err > 1e-9 * n as f64 {
        return fail("verification FAILED");
    }
    0
}

/// `cubemm sweep --n N [--p list] ...`.
pub fn sweep(argv: &[String]) -> i32 {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let n: usize = match args.get_or("n", 64) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let (cfg, ts, tw) = match machine_from(&args) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let ps: Vec<usize> = match args.raw("p") {
        None => vec![4, 8, 16, 64, 512],
        Some(list) => match list.split(',').map(|t| t.trim().parse()).collect() {
            Ok(v) => v,
            Err(_) => return fail(&format!("invalid --p list {list:?}")),
        },
    };

    let jobs = match jobs_from(&args) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };

    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let reference = gemm::reference(&a, &b);

    // Every (algorithm, p) cell is an independent simulated run; compute
    // them through the parallel grid driver (results come back in task
    // order, so the table below is identical at any --jobs value), then
    // print.
    enum Cell {
        Inapplicable,
        Elapsed(f64),
        WrongProduct,
        Failed(String),
    }
    let algos: Vec<Algorithm> = Algorithm::ALL
        .into_iter()
        .chain(Algorithm::EXTENSIONS)
        .collect();
    let tasks: Vec<(Algorithm, usize)> = algos
        .iter()
        .flat_map(|&algo| ps.iter().map(move |&p| (algo, p)))
        .collect();
    let cells = cubemm_harness::run_grid(
        &tasks,
        jobs,
        |&(_, p)| cubemm_harness::node_weight(cfg.engine, p),
        |&(algo, p)| match algo.check(n, p) {
            Err(_) => Cell::Inapplicable,
            Ok(()) => match algo.multiply(&a, &b, p, &cfg) {
                Ok(res) => {
                    if res.c.max_abs_diff(&reference) > 1e-9 * n as f64 {
                        Cell::WrongProduct
                    } else {
                        Cell::Elapsed(res.stats.elapsed)
                    }
                }
                Err(e) => Cell::Failed(e.to_string()),
            },
        },
    );

    println!(
        "sweep: n = {n}, {}, {} engine, ts = {ts}, tw = {tw}",
        cfg.port, cfg.engine
    );
    print!("{:<14}", "p =");
    for p in &ps {
        print!("{p:>10}");
    }
    println!();
    let mut cells = tasks.iter().zip(cells);
    for algo in &algos {
        print!("{:<14}", algo.name());
        for _ in &ps {
            let Some((&(algo, p), cell)) = cells.next() else {
                return fail("internal error: sweep grid size mismatch");
            };
            match cell {
                Cell::Inapplicable => print!("{:>10}", "-"),
                Cell::Elapsed(t) => print!("{t:>10.0}"),
                Cell::WrongProduct => {
                    return fail(&format!("{algo} produced a wrong product at p={p}"))
                }
                Cell::Failed(e) => return fail(&e),
            }
        }
        println!();
    }
    println!("all runs verified; '-' marks inapplicable shapes");
    0
}

/// `cubemm regions ...`.
pub fn regions(argv: &[String]) -> i32 {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let ts: f64 = match args.get_or("ts", 150.0) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let tw: f64 = match args.get_or("tw", 3.0) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let port = match parse_port(args.raw("port")) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let map = RegionMap::generate(Sweep::default(), port, ts, tw);
    print!("{}", render_ascii(&map));
    0
}

/// The port models `--port one|multi|both` selects (default: both —
/// analysis is cheap and the claims differ per model).
fn analyze_ports(raw: Option<&str>) -> Result<Vec<cubemm_simnet::PortModel>, String> {
    match raw {
        None | Some("both") => Ok(vec![
            cubemm_simnet::PortModel::OnePort,
            cubemm_simnet::PortModel::MultiPort,
        ]),
        some => Ok(vec![parse_port(some)?]),
    }
}

/// `cubemm analyze <algo|all> ...`.
pub fn analyze(argv: &[String]) -> i32 {
    let args = match Args::parse_with_bools(argv, &["symbolic"]) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let ports = match analyze_ports(args.raw("port")) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let engine = match parse_engine(args.raw("engine")) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let selector = match args
        .positional::<String>(0)
        .or_else(|| args.raw("algo").map(str::to_string))
    {
        Some(s) => s,
        None => return fail("analyze needs an algorithm name or `all`"),
    };

    if args.has("symbolic") {
        return analyze_symbolic(&selector, &ports);
    }

    if selector == "all" {
        // Registry sweep over the default grid: one summary line per
        // point, non-zero exit on any unsound or non-conformant result.
        // Each point replays its schedule on an independent simulated
        // machine, so the grid runs through the parallel driver; results
        // come back in task order and the report below is identical at
        // any --jobs value.
        let jobs = match jobs_from(&args) {
            Ok(v) => v,
            Err(e) => return fail(&e),
        };
        let mut tasks = Vec::new();
        for algo in Algorithm::ALL.into_iter().chain(Algorithm::EXTENSIONS) {
            for &port in &ports {
                for (n, p) in cubemm_analyze::applicable_grid(algo) {
                    tasks.push((algo, port, n, p));
                }
            }
        }
        let results = cubemm_harness::run_grid(
            &tasks,
            jobs,
            |&(_, _, _, p)| cubemm_harness::node_weight(engine, p),
            |&(algo, port, n, p)| cubemm_analyze::analyze_algorithm_on(algo, n, p, port, engine),
        );
        let mut violations = 0usize;
        for (&(algo, port, n, p), result) in tasks.iter().zip(results) {
            let r = match result {
                Ok(r) => r,
                Err(e) => return fail(&e),
            };
            let cost = r.analysis.cost;
            let status = if !r.analysis.is_sound() || !r.verdict.is_conformant() {
                violations += 1;
                "VIOLATION"
            } else if r.analysis.is_full_bandwidth() {
                "ok"
            } else {
                "ok (links serialize)"
            };
            println!(
                "{:<14} n={n:<3} p={p:<3} {:<10} a={:<6} b={:<9} {status}: {}",
                algo.name(),
                format!("{port}"),
                cost.map_or_else(|| "-".into(), |c| format!("{}", c.a)),
                cost.map_or_else(|| "-".into(), |c| format!("{}", c.b)),
                r.verdict
            );
            if !r.analysis.is_sound() {
                for d in &r.analysis.diagnostics {
                    println!("    - {d}");
                }
            }
        }
        if violations > 0 {
            return fail(&format!("{violations} schedule(s) failed analysis"));
        }
        println!("all schedules certified");
        return 0;
    }

    let algo: Algorithm = match selector
        .parse::<Algorithm>()
        .map_err(|e| format!("{e} (see `cubemm help` for the list)"))
    {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let n: usize = match args.get_or("n", 64) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let p: usize = match args.get_or("p", 64) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    if let Err(e) = algo.check(n, p) {
        return fail(&format!("{algo} cannot run n={n} on p={p}: {e}"));
    }
    let mut bad = false;
    for port in ports {
        let r = match cubemm_analyze::analyze_algorithm_on(algo, n, p, port, engine) {
            Ok(r) => r,
            Err(e) => return fail(&e),
        };
        print!("{}", cubemm_analyze::render(&r));
        bad |= !r.analysis.is_sound() || !r.verdict.is_conformant();
    }
    if bad {
        return fail("schedule failed analysis");
    }
    0
}

/// `cubemm analyze ... --symbolic`: the parametric certification gate.
///
/// Instead of replaying schedules at enumerated `(n, p)` grid points,
/// this certifies the *closed forms*: every collective schema and every
/// algorithm composition is proven against Tables 1/2 as polynomial
/// identities in `n` and `2^d`, valid for every hypercube size at once.
/// Grid replay survives only as the grounding spot-check inside each
/// certificate. Non-zero exit if any obligation fails.
fn analyze_symbolic(selector: &str, ports: &[cubemm_simnet::PortModel]) -> i32 {
    let mut bad = 0usize;
    let mut total = 0usize;
    if selector == "all" {
        for cert in cubemm_analyze::certify_all_collectives() {
            total += 1;
            bad += usize::from(!cert.ok());
            print!("{cert}");
        }
        println!();
        for cert in cubemm_analyze::certify_all_algorithms() {
            total += 1;
            bad += usize::from(!cert.ok());
            print!("{cert}");
        }
    } else {
        let algo: Algorithm = match selector
            .parse::<Algorithm>()
            .map_err(|e| format!("{e} (see `cubemm help` for the list)"))
        {
            Ok(a) => a,
            Err(e) => return fail(&e),
        };
        for &port in ports {
            total += 1;
            let cert = cubemm_analyze::certify_algorithm(algo, port);
            bad += usize::from(!cert.ok());
            print!("{cert}");
        }
    }
    if bad > 0 {
        return fail(&format!("{bad}/{total} symbolic certificate(s) failed"));
    }
    println!("{total}/{total} symbolic certificates hold for all p = 2^d");
    0
}

/// Feeds a request stream to a live pool, one JSON line per job,
/// answering on `output` (shared with the pool's responders). Returns
/// the number of malformed lines answered in-band; an `Err` is a broken
/// *stream* (the exit-4 case), which per-job failures never are.
fn serve_stream<R, W>(
    input: R,
    output: &std::sync::Arc<std::sync::Mutex<W>>,
    pool: &cubemm_serve::ServePool,
) -> std::io::Result<u64>
where
    R: std::io::BufRead,
    W: std::io::Write + Send + 'static,
{
    use cubemm_serve::{JobResponse, JobStatus, Responder};

    fn emit<W: std::io::Write>(out: &std::sync::Mutex<W>, resp: &JobResponse) {
        let mut w = out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(w, "{}", resp.encode());
        let _ = w.flush();
    }

    let mut malformed = 0u64;
    for line in input.lines() {
        if cubemm_serve::shutdown::requested() {
            break;
        }
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match cubemm_serve::parse_request(line) {
            Ok(req) => {
                let out = std::sync::Arc::clone(output);
                let responder: Responder = std::sync::Arc::new(move |resp| emit(&out, &resp));
                pool.submit(req, responder);
            }
            Err((id, error)) => {
                // A bad line is answered, not fatal: the stream (and
                // every queued job) lives on.
                malformed += 1;
                emit(
                    output,
                    &JobResponse {
                        id,
                        status: JobStatus::Malformed { error },
                    },
                );
            }
        }
    }
    Ok(malformed)
}

/// Accept loop for `--socket PATH`: each connection gets its own
/// reader thread against the shared pool; SIGTERM stops accepting and
/// the scope joins every connection before the caller drains.
#[cfg(unix)]
fn serve_socket(path: &str, pool: &cubemm_serve::ServePool) -> std::io::Result<u64> {
    use std::io::BufReader;
    use std::os::unix::net::UnixListener;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let malformed = AtomicU64::new(0);
    let result = std::thread::scope(|scope| -> std::io::Result<()> {
        loop {
            if cubemm_serve::shutdown::requested() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let malformed = &malformed;
                    scope.spawn(move || {
                        let Ok(read_half) = stream.try_clone() else {
                            return;
                        };
                        let output = Arc::new(Mutex::new(stream));
                        if let Ok(m) = serve_stream(BufReader::new(read_half), &output, pool) {
                            malformed.fetch_add(m, Ordering::Relaxed);
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
    });
    let _ = std::fs::remove_file(path);
    result.map(|()| malformed.load(Ordering::Relaxed))
}

/// `cubemm serve [--workers N] [--queue N] [--node-budget N]
/// [--socket PATH]`.
pub fn serve(argv: &[String]) -> i32 {
    use cubemm_serve::{ServeConfig, ServePool};

    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let workers: usize = match args.get_or("workers", 4) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let queue_cap: usize = match args.get_or("queue", 256) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let node_budget: usize = match args.get_or("node-budget", cubemm_harness::DEFAULT_NODE_BUDGET) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    if workers == 0 || queue_cap == 0 || node_budget == 0 {
        return fail("--workers, --queue, and --node-budget must be at least 1");
    }
    cubemm_serve::shutdown::install();
    let pool = ServePool::start(ServeConfig {
        workers,
        queue_cap,
        node_budget,
    });
    let streamed = match args.raw("socket") {
        Some(path) => {
            #[cfg(unix)]
            {
                eprintln!("cubemm serve: listening on {path} ({workers} workers)");
                serve_socket(path, &pool)
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                drop(pool);
                return fail("--socket requires a Unix platform");
            }
        }
        None => {
            let stdin = std::io::stdin();
            let output = std::sync::Arc::new(std::sync::Mutex::new(std::io::stdout()));
            serve_stream(stdin.lock(), &output, &pool)
        }
    };
    let stats = pool.drain();
    let malformed = *streamed.as_ref().unwrap_or(&0);
    eprintln!(
        "cubemm serve: drained — {} submitted, {} ok, {} failed, {} deadline, \
         {} rejected, {} overloaded, {} shed, {} malformed, {} quarantines, {} reboots",
        stats.submitted,
        stats.ok,
        stats.failed,
        stats.deadline_missed,
        stats.rejected,
        stats.overloaded,
        stats.shed,
        malformed,
        stats.quarantines,
        stats.reboots,
    );
    match streamed {
        Ok(_) => 0,
        Err(e) => {
            eprintln!("error: request stream broke: {e}");
            4
        }
    }
}

/// `cubemm tune-kernel` — sweep the packed kernel's mc/kc/nc blocking
/// grid on this host and persist the winner so untuned
/// `Kernel::Packed` runs pick it up (see `cubemm_dense::tune`).
pub fn tune_kernel(argv: &[String]) -> i32 {
    use cubemm_dense::microkernel::MicrokernelImpl;
    use cubemm_dense::tune;

    let args = match Args::parse_with_bools(argv, &["full", "dry-run"]) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let n: usize = match args.get_or("n", 512) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let reps: usize = match args.get_or("reps", 3) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let threads: usize = match args.get_or("threads", 1) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    if n == 0 || reps == 0 {
        return fail("--n and --reps must be at least 1");
    }
    let out = args
        .raw("out")
        .map(str::to_string)
        .or_else(|| {
            std::env::var(tune::TUNE_FILE_ENV)
                .ok()
                .filter(|p| !p.is_empty())
        })
        .unwrap_or_else(|| tune::DEFAULT_TUNE_FILE.to_string());
    let mk = MicrokernelImpl::active();
    let cache = tune::detect_caches();
    eprintln!(
        "tune-kernel: microkernel {} — L1d {} KiB, L2 {} KiB — sweeping n={n} reps={reps} threads={threads}",
        mk.name(),
        cache.l1d / 1024,
        cache.l2 / 1024,
    );
    let (best, entries) = tune::tune(mk, n, reps, threads, args.has("full"));
    println!("{:>5} {:>5} {:>5} {:>9}", "mc", "kc", "nc", "GFLOPS");
    for e in &entries {
        println!(
            "{:>5} {:>5} {:>5} {:>9.3}",
            e.blocking.mc, e.blocking.kc, e.blocking.nc, e.gflops
        );
    }
    eprintln!(
        "tune-kernel: winner mc={} kc={} nc={} at {:.3} GFLOPS{}",
        best.mc,
        best.kc,
        best.nc,
        best.gflops,
        if best.kc != cubemm_dense::gemm::DEFAULT_KC {
            " (kc differs from the untuned default — tuned runs will not be \
             bitwise comparable to untuned hosts; pin kc explicitly if you \
             need that)"
        } else {
            ""
        },
    );
    if args.has("dry-run") {
        eprintln!("tune-kernel: --dry-run, not writing {out}");
        return 0;
    }
    match best.save(std::path::Path::new(&out)) {
        Ok(()) => {
            eprintln!("tune-kernel: wrote {out} (picked up by the next untuned packed run)");
            0
        }
        Err(e) => fail(&format!("writing {out}: {e}")),
    }
}

/// `cubemm chaos <algo|all>`: the seeded, coverage-guided fault
/// campaign (DESIGN.md §16). Every run is reproducible from `--seed`;
/// oracle failures are delta-debugged down to a minimal fault plan and
/// (with `--repro-dir`) written as `--fault-plan`-ready JSON.
pub fn chaos(argv: &[String]) -> i32 {
    use cubemm_harness::chaos::{run_campaign, ChaosOptions, Coverage};

    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let selector = match args
        .positional::<String>(0)
        .or_else(|| args.raw("algo").map(str::to_string))
    {
        Some(s) => s,
        None => return fail("chaos needs an algorithm name or `all`"),
    };
    let seed: u64 = match args.get_or("seed", 0) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let defaults = ChaosOptions::default();
    let parsed = (|| -> Result<ChaosOptions, String> {
        let fail_on_corrected = match args.raw("fail-on") {
            None => false,
            Some("corrected") => true,
            Some(other) => {
                return Err(format!(
                    "unknown --fail-on value {other:?} (only `corrected`)"
                ))
            }
        };
        Ok(ChaosOptions {
            runs: args.get_or("runs", defaults.runs)?,
            n: args.get_or("n", defaults.n)?,
            max_entries: args.get_or("max-entries", defaults.max_entries)?,
            budget_factor: args.get_or("budget-factor", defaults.budget_factor)?,
            fail_on_corrected,
            policy: RecoveryPolicy {
                max_attempts: args.get_or("recover-attempts", defaults.policy.max_attempts)?,
                ..defaults.policy
            },
        })
    })();
    let opts = match parsed {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    if opts.runs == 0 || opts.n == 0 || opts.max_entries == 0 {
        return fail("--runs, --n and --max-entries must be at least 1");
    }

    let algos: Vec<Algorithm> = if selector == "all" {
        Algorithm::ALL
            .into_iter()
            .chain(Algorithm::EXTENSIONS)
            .collect()
    } else {
        match selector
            .parse::<Algorithm>()
            .map_err(|e| format!("{e} (see `cubemm help` for the list)"))
        {
            Ok(a) => vec![a],
            Err(e) => return fail(&e),
        }
    };

    let mut aggregate = Coverage::new();
    let mut total_violations = 0usize;
    for algo in &algos {
        let report = match run_campaign(*algo, seed, &opts) {
            Ok(r) => r,
            Err(e) => return fail(&format!("chaos {}: {e}", algo.name())),
        };
        print!("{}", report.render());
        aggregate.merge(&report.coverage);
        total_violations += report.violations.len();
        if let Some(dir) = args.raw("repro-dir") {
            if !report.violations.is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    return fail(&format!("--repro-dir {dir:?}: {e}"));
                }
                for v in &report.violations {
                    let path = format!("{dir}/chaos-{}-run{}.json", algo.name(), v.run);
                    if let Err(e) = std::fs::write(&path, &v.shrunk_json) {
                        return fail(&format!("writing {path:?}: {e}"));
                    }
                    eprintln!(
                        "chaos {}: run {} repro ({} entr{}) -> {path}",
                        algo.name(),
                        v.run,
                        v.shrunk_entries,
                        if v.shrunk_entries == 1 { "y" } else { "ies" }
                    );
                }
            }
        }
    }
    if algos.len() > 1 {
        println!("aggregate coverage: {}", aggregate.summary());
    }
    if total_violations > 0 {
        eprintln!(
            "chaos: {total_violations} oracle violation(s); replay a repro with \
             `cubemm run --abft --fault-plan FILE`"
        );
        return 2;
    }
    println!("chaos: every oracle held over {} campaign(s)", algos.len());
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn list_runs_clean() {
        assert_eq!(list(&argv("64 64")), 0);
        assert_eq!(list(&argv("")), 0);
    }

    #[test]
    fn chaos_campaign_runs_clean_on_a_healthy_stack() {
        assert_eq!(chaos(&argv("cannon --seed 7 --runs 6")), 0);
    }

    #[test]
    fn chaos_rejects_bad_arguments() {
        assert_ne!(chaos(&argv("")), 0);
        assert_ne!(chaos(&argv("nope --runs 1")), 0);
        assert_ne!(chaos(&argv("cannon --runs 0")), 0);
        assert_ne!(chaos(&argv("cannon --runs 1 --fail-on everything")), 0);
        assert_ne!(chaos(&argv("cannon --runs 1 --seed many")), 0);
    }

    #[test]
    fn chaos_fail_on_corrected_writes_replayable_repros() {
        // `--fail-on corrected` turns every in-place correction into a
        // "violation", exercising the shrinker and the repro files end
        // to end: the campaign must exit 2 and each written plan must
        // replay through `run --abft --fault-plan` (exit 0 — the
        // corruption is corrected or recovered, which is the point).
        let dir = std::env::temp_dir().join(format!("cubemm-chaos-cli-{}", std::process::id()));
        let dirs = dir.display().to_string();
        assert_eq!(
            chaos(&argv(&format!(
                "cannon --seed 11 --runs 40 --fail-on corrected --repro-dir {dirs}"
            ))),
            2
        );
        let mut repros = 0usize;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let text = std::fs::read_to_string(&path).unwrap();
            let plan = FaultPlan::from_json(&text).unwrap();
            assert!(plan.fault_count() >= 1, "{path:?} shrunk to nothing");
            assert_eq!(
                run(&argv(&format!(
                    "--abft --algo cannon --n 6 --p 64 --fault-plan {}",
                    path.display()
                ))),
                0,
                "repro {path:?} must replay"
            );
            repros += 1;
        }
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(repros > 0, "no repro files were written");
    }

    #[test]
    fn tune_kernel_dry_run_and_bad_args() {
        // Tiny n: pins the plumbing (sweep, table, flag parsing), not perf.
        assert_eq!(tune_kernel(&argv("--n 48 --reps 1 --dry-run")), 0);
        assert_ne!(tune_kernel(&argv("--n 0 --dry-run")), 0);
        assert_ne!(tune_kernel(&argv("--reps 0 --dry-run")), 0);
        assert_ne!(tune_kernel(&argv("--n nope")), 0);
    }

    #[test]
    fn run_small_configuration() {
        assert_eq!(run(&argv("--algo 3d-all --n 16 --p 8")), 0);
        assert_eq!(run(&argv("--algo cannon --n 16 --p 16 --port multi")), 0);
    }

    #[test]
    fn run_rejects_bad_input() {
        assert_ne!(run(&argv("--algo nope --n 16 --p 8")), 0);
        assert_ne!(run(&argv("--algo 3d-all --n 15 --p 8")), 0);
        assert_ne!(run(&argv("--n 16")), 0);
        assert_ne!(run(&argv("--algo cannon --n 16 --p 16 --kernel simd")), 0);
        assert_ne!(run(&argv("--algo cannon --n 16 --p 16 --engine fiber")), 0);
    }

    #[test]
    fn engine_flag_selects_the_event_engine_everywhere() {
        assert_eq!(run(&argv("--algo cannon --n 16 --p 16 --engine event")), 0);
        assert_eq!(
            run(&argv("--algo cannon --n 16 --p 16 --engine threaded")),
            0
        );
        assert_eq!(sweep(&argv("--n 16 --p 4,8,16 --engine event --jobs 2")), 0);
        assert_eq!(
            analyze(&argv("cannon --n 16 --p 16 --port one --engine event")),
            0
        );
    }

    #[test]
    fn run_accepts_every_kernel_spelling() {
        for kernel in ["naive", "ikj", "blocked:32", "packed", "packed:2"] {
            assert_eq!(
                run(&argv(&format!(
                    "--algo cannon --n 16 --p 16 --kernel {kernel}"
                ))),
                0,
                "--kernel {kernel} failed"
            );
        }
    }

    #[test]
    fn run_with_injected_faults_still_verifies() {
        // Lenient dead link: the simulator detours, the product is still
        // checked against the reference, and the faults section prints.
        assert_eq!(
            run(&argv("--algo cannon --n 16 --p 16 --fault-link 0:1")),
            0
        );
        // Degraded link + straggler, multi-port.
        assert_eq!(
            run(&argv(
                "--algo 3d-all --n 16 --p 8 --port multi \
                 --fault-degrade 0:1:2.0:4.0 --fault-straggler 3:2.5"
            )),
            0
        );
    }

    #[test]
    fn run_rejects_malformed_fault_specs() {
        assert_ne!(
            run(&argv("--algo cannon --n 16 --p 16 --fault-link 0:3")),
            0
        );
        assert_ne!(run(&argv("--algo cannon --n 16 --p 16 --fault-link 0")), 0);
        assert_ne!(
            run(&argv("--algo cannon --n 16 --p 16 --fault-straggler 2:0.5")),
            0
        );
        assert_ne!(
            run(&argv("--algo cannon --n 16 --p 16 --fault-drop 0:1")),
            0
        );
        assert_ne!(
            run(&argv("--algo cannon --n 16 --p 16 --fault-strict maybe")),
            0
        );
        // A fault plan referencing a node outside the machine surfaces
        // the simulator's config error rather than panicking.
        assert_ne!(
            run(&argv(
                "--algo cannon --n 16 --p 16 --fault-straggler 99:2.0"
            )),
            0
        );
    }

    #[test]
    fn abft_corrects_or_recovers_and_exits_zero() {
        // In-flight corruption, corrected in place on the first attempt
        // (site found by the smoke probe; the simulator is
        // deterministic, so it stays stable).
        assert_eq!(
            run(&argv(
                "--algo cannon --n 6 --p 4 --abft --fault-corrupt 0:1:0:1:64"
            )),
            0
        );
        // Sign-flip corruption.
        assert_eq!(
            run(&argv(
                "--algo cannon --n 6 --p 4 --abft --fault-flip 0:1:0:1:63"
            )),
            0
        );
        // Scheduled node crash: survived by reboot-and-rerun.
        assert_eq!(
            run(&argv("--algo cannon --n 6 --p 4 --abft --fault-crash 2:1")),
            0
        );
        // ABFT pads internally: n = 6 is indivisible for p = 16 (√p = 4)
        // but the augmented order 8 is fine.
        assert_eq!(run(&argv("--algo cannon --n 6 --p 16 --abft")), 0);
    }

    #[test]
    fn abft_exit_codes_follow_the_contract() {
        // Site (2,3,seq 0) propagates through Cannon's forwarded blocks:
        // detected but not locatable, so a budget of one attempt leaves
        // it uncorrectable (exit 2) while the default budget quarantines
        // the link and converges (exit 0).
        let site = "--algo cannon --n 6 --p 4 --abft --fault-corrupt 2:3:0:1:64";
        assert_eq!(run(&argv(&format!("{site} --recover-attempts 1"))), 2);
        assert_eq!(run(&argv(site)), 0);
        // A dropped message on an algorithm without retries deadlocks:
        // exit 3, with and without --abft.
        assert_eq!(
            run(&argv("--algo cannon --n 16 --p 4 --fault-drop 0:1:0")),
            3
        );
        assert_eq!(
            run(&argv(
                "--algo cannon --n 16 --p 4 --abft --fault-drop 0:1:0"
            )),
            3
        );
    }

    #[test]
    fn fault_plan_round_trips_through_files() {
        let dir = std::env::temp_dir().join(format!("cubemm-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("plan.json");
        let path = path.to_str().expect("utf-8 temp path");
        assert_eq!(
            run(&argv(&format!(
                "--algo cannon --n 6 --p 4 --abft \
                 --fault-corrupt 0:1:0:1:64 --fault-crash 2:1 \
                 --fault-plan-dump {path}"
            ))),
            0
        );
        let text = std::fs::read_to_string(path).expect("dumped plan exists");
        let plan = FaultPlan::from_json(&text).expect("dumped plan parses");
        assert!(plan.has_corruptions());
        assert_eq!(plan.crash_step(2), Some(1));
        // Loading the dumped plan reproduces the run; a flag on top of
        // the file stacks.
        assert_eq!(
            run(&argv(&format!(
                "--algo cannon --n 6 --p 4 --abft --fault-plan {path}"
            ))),
            0
        );
        assert_eq!(
            run(&argv(&format!(
                "--algo cannon --n 6 --p 4 --abft --fault-plan {path} --fault-crash 3:1"
            ))),
            0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abft_and_fault_flags_reject_malformed_specs() {
        // Not a hypercube edge.
        assert_ne!(
            run(&argv(
                "--algo cannon --n 6 --p 4 --abft --fault-corrupt 0:3:0:1:64"
            )),
            0
        );
        // Zero delta, bad bit, short spec.
        assert_ne!(
            run(&argv(
                "--algo cannon --n 6 --p 4 --abft --fault-corrupt 0:1:0:1:0"
            )),
            0
        );
        assert_ne!(
            run(&argv(
                "--algo cannon --n 6 --p 4 --abft --fault-flip 0:1:0:1:64"
            )),
            0
        );
        assert_ne!(run(&argv("--algo cannon --n 6 --p 4 --fault-crash 2")), 0);
        // Missing plan file; zero retry budget.
        assert_ne!(
            run(&argv(
                "--algo cannon --n 6 --p 4 --fault-plan /nonexistent/plan.json"
            )),
            0
        );
        assert_ne!(
            run(&argv(
                "--algo cannon --n 6 --p 4 --abft --recover-attempts 0"
            )),
            0
        );
    }

    #[test]
    fn sweep_and_regions_run_clean() {
        assert_eq!(sweep(&argv("--n 16 --p 4,8,16")), 0);
        assert_eq!(regions(&argv("--port multi --ts 5 --tw 3")), 0);
    }

    #[test]
    fn sweep_accepts_parallel_jobs() {
        assert_eq!(sweep(&argv("--n 16 --p 4,8,16 --jobs 3")), 0);
    }

    #[test]
    fn jobs_flag_is_validated() {
        assert_ne!(sweep(&argv("--n 16 --p 4 --jobs 0")), 0);
        assert_ne!(sweep(&argv("--n 16 --p 4 --jobs many")), 0);
        assert_ne!(analyze(&argv("all --jobs 0")), 0);
        assert_ne!(analyze(&argv("all --jobs many")), 0);
    }

    #[test]
    fn analyze_certifies_small_configurations() {
        assert_eq!(analyze(&argv("cannon --n 16 --p 16 --port one")), 0);
        assert_eq!(analyze(&argv("3d-all --n 16 --p 8 --port multi")), 0);
        // `--algo` spelling and the both-ports default.
        assert_eq!(analyze(&argv("--algo simple --n 16 --p 16")), 0);
    }

    #[test]
    fn analyze_rejects_bad_input() {
        assert_ne!(analyze(&argv("")), 0);
        assert_ne!(analyze(&argv("nosuch --n 16 --p 16")), 0);
        assert_ne!(analyze(&argv("cannon --n 17 --p 16")), 0);
        assert_ne!(analyze(&argv("cannon --n 16 --p 16 --port dual")), 0);
    }

    /// Runs `serve_stream` over a canned script against a small live
    /// pool and returns the decoded response lines.
    fn serve_script(script: &str) -> Vec<cubemm_simnet::json::Json> {
        use std::sync::{Arc, Mutex};
        let pool = cubemm_serve::ServePool::start(cubemm_serve::ServeConfig {
            workers: 2,
            ..cubemm_serve::ServeConfig::default()
        });
        let output: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        serve_stream(std::io::Cursor::new(script.to_string()), &output, &pool)
            .expect("in-memory stream cannot break");
        pool.drain();
        let bytes = output.lock().unwrap().clone();
        String::from_utf8(bytes)
            .expect("responses are UTF-8")
            .lines()
            .map(|l| cubemm_simnet::json::parse(l).expect("each response line is JSON"))
            .collect()
    }

    #[test]
    fn serve_stream_answers_every_line_and_survives_malformed_input() {
        use cubemm_simnet::json::Json;
        let script = concat!(
            "{\"id\":\"a\",\"n\":16,\"p\":16,\"algo\":\"cannon\"}\n",
            "this is not json\n",
            "\n", // blank lines are skipped, not answered
            "{\"id\":\"b\",\"n\":16,\"p\":16,\"algo\":\"cannon\",\"abft\":false}\n",
            "{\"id\":\"c\",\"n\":16,\"p\":16,\"priority\":99}\n",
        );
        let responses = serve_script(script);
        assert_eq!(responses.len(), 4);
        let status_of = |id: &str| {
            responses
                .iter()
                .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
                .and_then(|r| r.get("status"))
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        assert_eq!(status_of("a").as_deref(), Some("ok"));
        assert_eq!(status_of("b").as_deref(), Some("ok"));
        // Bad priority: malformed, but the id was readable and echoed.
        assert_eq!(status_of("c").as_deref(), Some("malformed"));
        // The unparseable line got an anonymous malformed response.
        assert!(responses.iter().any(|r| {
            r.get("id").and_then(Json::as_str) == Some("")
                && r.get("status").and_then(Json::as_str) == Some("malformed")
        }));
    }

    #[test]
    fn serve_stream_matches_one_shot_run_bitwise() {
        use cubemm_simnet::json::Json;
        // The serve-vs-run byte-identity check, through the CLI layer:
        // the served fingerprint equals the fingerprint of the same
        // multiplication done directly (same seed → same inputs).
        let responses = serve_script(
            "{\"id\":\"x\",\"n\":16,\"p\":16,\"algo\":\"cannon\",\"abft\":false,\"seed\":1}\n",
        );
        let served = responses[0]
            .get("fingerprint")
            .and_then(Json::as_str)
            .expect("ok response carries a fingerprint")
            .to_string();
        let a = Matrix::random(16, 16, 1);
        let b = Matrix::random(16, 16, 2);
        let direct = Algorithm::Cannon
            .multiply(&a, &b, 16, &MachineConfig::default())
            .expect("direct run");
        assert_eq!(served, cubemm_serve::fingerprint_hex(&direct.c));
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert_eq!(serve(&["--workers".into(), "0".into()]), 2);
        assert_eq!(serve(&["--queue".into(), "x".into()]), 2);
    }
}
