//! Quarantine-and-rerun recovery around checksum-protected runs.
//!
//! [`cubemm_core::abft::multiply_abft`] detects silent corruption but
//! can only *correct* the patterns its residuals localize; propagated
//! input corruption, multi-fault damage, scheduled node crashes, and
//! hard link failures all need another attempt on a healthier machine.
//! [`multiply_with_recovery`] drives that loop:
//!
//! 1. run the protected multiplication,
//! 2. on a trustworthy outcome (clean or corrected), stop,
//! 3. otherwise mutate the fault plan to excise the implicated
//!    component — quarantine every corrupting link (routing detours
//!    around dead links, so a quarantined corruptor cannot re-fire),
//!    reboot a crashed node, stop dropping on a drop-exhausted edge,
//!    relax strictness so detours are allowed — charge one capped
//!    exponential-backoff delay, and retry,
//! 4. give up after a bounded number of attempts.
//!
//! Because the simulator is deterministic, a retry against an
//! *unchanged* plan would reproduce the failure bit-for-bit; the loop
//! therefore insists every retry changes the plan, and reports
//! exhaustion immediately when no mutation applies (e.g. damage was
//! detected but no scheduled corruptor explains it).

use cubemm_core::abft::{multiply_abft_with_tol, AbftOutcome, AbftResult};
use cubemm_core::{AlgoError, Algorithm, MachineConfig};
use cubemm_dense::Matrix;
use cubemm_simnet::{FaultPlan, RunError, SendError};

/// Retry budget and virtual backoff schedule for
/// [`multiply_with_recovery`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Total runs allowed, the first included (at least 1).
    pub max_attempts: usize,
    /// Virtual-time delay charged before the first retry.
    pub backoff: f64,
    /// Multiplier applied to the delay after each retry.
    pub backoff_factor: f64,
    /// Cap on any single retry's delay, so the exponential schedule
    /// cannot dwarf the reruns it paces.
    pub max_backoff: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 4,
            backoff: 16.0,
            backoff_factor: 2.0,
            max_backoff: 1024.0,
        }
    }
}

/// One plan mutation the recovery loop applied before a retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Killed the (undirected) link so routing detours around its
    /// scheduled corruption.
    QuarantinedLink {
        /// Lower endpoint.
        a: usize,
        /// Higher endpoint.
        b: usize,
    },
    /// Cleared a node's scheduled crash (the rerun models a reboot).
    RebootedNode {
        /// The previously crashed node.
        node: usize,
    },
    /// Cleared the drop schedule of the edge whose retries ran out.
    UnblockedDrops {
        /// Sending node.
        from: usize,
        /// Destination node.
        to: usize,
    },
    /// Switched a strict plan to lenient so quarantined links detour
    /// instead of failing sends outright.
    RelaxedStrictness,
}

impl std::fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryAction::QuarantinedLink { a, b } => {
                write!(f, "quarantined link {a}<->{b}")
            }
            RecoveryAction::RebootedNode { node } => write!(f, "rebooted node {node}"),
            RecoveryAction::UnblockedDrops { from, to } => {
                write!(f, "cleared drop schedule on edge {from}->{to}")
            }
            RecoveryAction::RelaxedStrictness => write!(f, "relaxed plan to lenient routing"),
        }
    }
}

/// What the recovery loop did on the way to its answer.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Runs performed (1 = succeeded first try).
    pub attempts: usize,
    /// Plan mutations, in the order applied.
    pub actions: Vec<RecoveryAction>,
    /// Total virtual backoff delay charged between attempts. Not part
    /// of any run's clock — bookkeeping for cost accounting.
    pub backoff_spent: f64,
    /// The individual delays behind [`RecoveryReport::backoff_spent`],
    /// one per retry in order: `delays[i]` was charged before attempt
    /// `i + 2`. Exposes the capped exponential schedule so callers (the
    /// CLI's verbose report, the serve deadline check) can show *when*
    /// the virtual time went, not just how much.
    pub backoff_delays: Vec<f64>,
    /// The fault plan the final (returned) attempt ran under.
    pub final_plan: FaultPlan,
}

/// Why [`multiply_with_recovery`] gave up.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// The failure is not a machine fault rerunning could fix: bad
    /// shapes, impossible topology, a deadlock or node panic (algorithm
    /// bugs), or an unroutable destination (quarantine disconnected the
    /// machine).
    Fatal(AlgoError),
    /// The attempt budget ran out — or no plan mutation could explain
    /// the damage — without producing a trustworthy product.
    Exhausted {
        /// Runs performed.
        attempts: usize,
        /// Human-readable description of the last failure.
        last: String,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Fatal(e) => write!(f, "unrecoverable failure: {e}"),
            RecoveryError::Exhausted { attempts, last } => {
                write!(
                    f,
                    "no trustworthy product after {attempts} attempt(s): {last}"
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// [`multiply_with_recovery_tol`] with the magnitude-scaled default
/// verification tolerance.
pub fn multiply_with_recovery(
    algo: Algorithm,
    a: &Matrix,
    b: &Matrix,
    p: usize,
    cfg: &MachineConfig,
    policy: &RecoveryPolicy,
) -> Result<(AbftResult, RecoveryReport), RecoveryError> {
    multiply_with_recovery_tol(algo, a, b, p, cfg, policy, None)
}

/// Runs the checksum-protected multiplication under quarantine-and-rerun
/// recovery (see the module docs). On success the returned
/// [`AbftResult`] is the final, trustworthy attempt and the
/// [`RecoveryReport`] records every plan mutation and backoff charged
/// to reach it.
pub fn multiply_with_recovery_tol(
    algo: Algorithm,
    a: &Matrix,
    b: &Matrix,
    p: usize,
    cfg: &MachineConfig,
    policy: &RecoveryPolicy,
    tol: Option<f64>,
) -> Result<(AbftResult, RecoveryReport), RecoveryError> {
    let mut cfg = cfg.clone();
    let mut report = RecoveryReport {
        attempts: 0,
        actions: Vec::new(),
        backoff_spent: 0.0,
        backoff_delays: Vec::new(),
        final_plan: cfg.faults.clone(),
    };
    let mut backoff = policy.backoff;
    let max_attempts = policy.max_attempts.max(1);
    loop {
        report.attempts += 1;
        let last = match multiply_abft_with_tol(algo, a, b, p, &cfg, tol) {
            Ok(res) if res.outcome.is_good() => {
                report.final_plan = cfg.faults.clone();
                return Ok((res, report));
            }
            Ok(res) => {
                let mutated = quarantine_corruptors(&mut cfg.faults, &mut report.actions);
                let desc = match res.outcome {
                    AbftOutcome::Uncorrectable { rows, cols } => {
                        format!("uncorrectable damage (suspect rows {rows:?}, columns {cols:?})")
                    }
                    _ => unreachable!("is_good() covered the other outcomes"),
                };
                if !mutated {
                    // Deterministic simulator + unchanged plan = the
                    // same damage again; don't waste the attempts.
                    return Err(RecoveryError::Exhausted {
                        attempts: report.attempts,
                        last: format!("{desc}; no scheduled corruptor left to quarantine"),
                    });
                }
                desc
            }
            Err(AlgoError::Sim(RunError::NodeCrashed { node, step })) => {
                cfg.faults = cfg.faults.clone().without_crash(node);
                report.actions.push(RecoveryAction::RebootedNode { node });
                format!("node {node} crashed at step {step}")
            }
            Err(AlgoError::Sim(RunError::LinkDead {
                error: SendError::LinkDead { from, to },
                ..
            })) => {
                // A strict plan fails sends on dead links; let the
                // rerun route around them instead.
                cfg.faults = cfg.faults.clone().lenient();
                report.actions.push(RecoveryAction::RelaxedStrictness);
                format!("strict plan failed the {from}->{to} send on a dead link")
            }
            Err(AlgoError::Sim(RunError::LinkDead {
                error: SendError::RetriesExhausted { from, to, attempts },
                ..
            })) => {
                cfg.faults = cfg.faults.clone().without_drops(from, to);
                report
                    .actions
                    .push(RecoveryAction::UnblockedDrops { from, to });
                format!("edge {from}->{to} dropped {attempts} delivery attempts")
            }
            // Unroutable destinations, deadlocks, panics, config and
            // shape errors: rerunning cannot help.
            Err(e) => return Err(RecoveryError::Fatal(e)),
        };
        if report.attempts >= max_attempts {
            return Err(RecoveryError::Exhausted {
                attempts: report.attempts,
                last,
            });
        }
        let delay = backoff.min(policy.max_backoff);
        report.backoff_spent += delay;
        report.backoff_delays.push(delay);
        backoff *= policy.backoff_factor;
    }
}

/// Kills every link that still has scheduled corruptions (routing then
/// detours around it). Returns whether the plan changed.
fn quarantine_corruptors(plan: &mut FaultPlan, actions: &mut Vec<RecoveryAction>) -> bool {
    let links: Vec<(usize, usize)> = plan.corrupting_links().collect();
    let mut mutated = false;
    for (a, b) in links {
        if plan.is_dead(a, b) {
            continue;
        }
        *plan = plan.clone().with_dead_link(a, b);
        actions.push(RecoveryAction::QuarantinedLink { a, b });
        mutated = true;
    }
    mutated
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubemm_dense::gemm;
    use cubemm_dense::Matrix;
    use cubemm_simnet::{CorruptKind, Corruption};

    fn ints(n: usize, salt: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| ((r * 7 + c * 3 + salt) % 5) as f64 - 2.0)
    }

    fn perturb(word: usize) -> Corruption {
        Corruption {
            word,
            kind: CorruptKind::Perturb { delta: 64.0 },
        }
    }

    #[test]
    fn healthy_run_succeeds_first_try_with_an_empty_report() {
        let (a, b) = (ints(6, 1), ints(6, 2));
        let (res, report) = multiply_with_recovery_tol(
            Algorithm::Cannon,
            &a,
            &b,
            4,
            &MachineConfig::default(),
            &RecoveryPolicy::default(),
            Some(1e-9),
        )
        .expect("healthy run");
        assert_eq!(res.outcome, AbftOutcome::Clean);
        assert_eq!(report.attempts, 1);
        assert!(report.actions.is_empty());
        assert_eq!(report.backoff_spent, 0.0);
        assert_eq!(res.c.as_slice(), gemm::reference(&a, &b).as_slice());
    }

    #[test]
    fn a_crash_is_survived_by_rebooting_the_node() {
        let (a, b) = (ints(6, 3), ints(6, 4));
        let cfg = MachineConfig::default().with_faults(FaultPlan::new().with_crash(2, 1));
        let (res, report) = multiply_with_recovery_tol(
            Algorithm::Cannon,
            &a,
            &b,
            4,
            &cfg,
            &RecoveryPolicy::default(),
            Some(1e-9),
        )
        .expect("reboot must converge");
        assert_eq!(report.attempts, 2);
        assert_eq!(
            report.actions,
            vec![RecoveryAction::RebootedNode { node: 2 }]
        );
        assert_eq!(report.backoff_spent, 16.0);
        assert_eq!(report.backoff_delays, vec![16.0]);
        assert!(report.final_plan.crash_step(2).is_none());
        assert_eq!(res.c.as_slice(), gemm::reference(&a, &b).as_slice());
    }

    #[test]
    fn two_retries_record_the_exponential_schedule() {
        let (a, b) = (ints(6, 9), ints(6, 10));
        // Two scheduled crashes: each attempt reboots one node, so the
        // run converges on attempt 3 after charging 16 then 32.
        let cfg = MachineConfig::default()
            .with_faults(FaultPlan::new().with_crash(1, 0).with_crash(2, 1));
        let (res, report) = multiply_with_recovery_tol(
            Algorithm::Cannon,
            &a,
            &b,
            4,
            &cfg,
            &RecoveryPolicy::default(),
            Some(1e-9),
        )
        .expect("two reboots fit the default budget");
        assert_eq!(report.attempts, 3);
        assert_eq!(report.backoff_delays, vec![16.0, 32.0]);
        assert_eq!(
            report.backoff_spent,
            report.backoff_delays.iter().sum::<f64>()
        );
        // Which crash fires first depends on host scheduling, but both
        // nodes must end up rebooted.
        assert_eq!(report.actions.len(), 2);
        assert!(report.actions.iter().all(
            |act| matches!(act, RecoveryAction::RebootedNode { node } if *node == 1 || *node == 2)
        ));
        assert_eq!(res.c.as_slice(), gemm::reference(&a, &b).as_slice());
    }

    #[test]
    fn backoff_schedule_honors_the_cap() {
        let (a, b) = (ints(6, 11), ints(6, 12));
        let cfg = MachineConfig::default()
            .with_faults(FaultPlan::new().with_crash(1, 0).with_crash(2, 1));
        let policy = RecoveryPolicy {
            max_attempts: 4,
            backoff: 100.0,
            backoff_factor: 10.0,
            max_backoff: 250.0,
        };
        let (_, report) =
            multiply_with_recovery_tol(Algorithm::Cannon, &a, &b, 4, &cfg, &policy, Some(1e-9))
                .expect("two reboots fit a budget of four");
        // Uncapped the second delay would be 1000; the cap pins it.
        assert_eq!(report.backoff_delays, vec![100.0, 250.0]);
        assert_eq!(report.backoff_spent, 350.0);
    }

    #[test]
    fn delay_landing_exactly_on_the_cap_is_not_disturbed() {
        let (a, b) = (ints(6, 13), ints(6, 14));
        // Three crashes burn three retries. The second delay is 1000
        // uncapped and the cap is 1000 — the boundary case must pass
        // through unchanged, and only the third (10000) gets clamped.
        let cfg = MachineConfig::default().with_faults(
            FaultPlan::new()
                .with_crash(1, 0)
                .with_crash(2, 0)
                .with_crash(3, 0),
        );
        let policy = RecoveryPolicy {
            max_attempts: 4,
            backoff: 100.0,
            backoff_factor: 10.0,
            max_backoff: 1000.0,
        };
        let (res, report) =
            multiply_with_recovery_tol(Algorithm::Cannon, &a, &b, 4, &cfg, &policy, Some(1e-9))
                .expect("three reboots fit a budget of four");
        assert_eq!(report.attempts, 4);
        assert_eq!(report.backoff_delays, vec![100.0, 1000.0, 1000.0]);
        assert_eq!(report.backoff_spent, 2100.0);
        assert_eq!(report.backoff_delays.len(), report.attempts - 1);
        assert_eq!(report.actions.len(), 3);
        assert_eq!(res.c.as_slice(), gemm::reference(&a, &b).as_slice());
    }

    #[test]
    fn no_mutation_avenue_exhausts_immediately_without_burning_budget() {
        let (a, b) = (ints(6, 15), ints(6, 16));
        // A negative tolerance makes every residual suspect, so
        // verification reports uncorrectable damage on a healthy
        // machine — and with no scheduled corruptor to quarantine, a
        // rerun would reproduce the verdict bit-for-bit. The loop must
        // give up on attempt 1 instead of spending the other three.
        let policy = RecoveryPolicy::default();
        let err = multiply_with_recovery_tol(
            Algorithm::Cannon,
            &a,
            &b,
            4,
            &MachineConfig::default(),
            &policy,
            Some(-1.0),
        )
        .expect_err("nothing to mutate, so retrying is pointless");
        match err {
            RecoveryError::Exhausted { attempts, last } => {
                assert_eq!(attempts, 1, "must not retry an unchanged plan");
                assert!(
                    last.contains("no scheduled corruptor left to quarantine"),
                    "{last}"
                );
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn propagated_corruption_is_survived_by_quarantining_the_link() {
        let (a, b) = (ints(6, 5), ints(6, 6));
        let want = gemm::reference(&a, &b);
        // Probe sites until one produces an outcome Cannon cannot
        // correct in place (forwarded A/B blocks propagate the damage);
        // recovery must then quarantine the link and converge exactly.
        let mut recovered = 0usize;
        for (from, to) in [(0usize, 1usize), (1, 0), (0, 2), (2, 3)] {
            for seq in 0..3u64 {
                let plan = FaultPlan::new().with_corruption(from, to, seq, perturb(1));
                let cfg = MachineConfig::default().with_faults(plan);
                let (res, report) = multiply_with_recovery_tol(
                    Algorithm::Cannon,
                    &a,
                    &b,
                    4,
                    &cfg,
                    &RecoveryPolicy::default(),
                    Some(1e-9),
                )
                .expect("single corruption must always be survivable");
                assert_eq!(res.c.as_slice(), want.as_slice(), "({from},{to},{seq})");
                if report.attempts > 1 {
                    assert!(report
                        .actions
                        .iter()
                        .any(|act| matches!(act, RecoveryAction::QuarantinedLink { .. })));
                    recovered += 1;
                }
            }
        }
        assert!(recovered > 0, "no probed site forced a quarantine-rerun");
    }

    #[test]
    fn exhaustion_reports_the_last_failure() {
        let (a, b) = (ints(6, 7), ints(6, 8));
        // Crash at every attempt the budget allows: crash node 1, and
        // keep max_attempts at 1 so the reboot never happens.
        let cfg = MachineConfig::default().with_faults(FaultPlan::new().with_crash(1, 0));
        let policy = RecoveryPolicy {
            max_attempts: 1,
            ..RecoveryPolicy::default()
        };
        let err =
            multiply_with_recovery_tol(Algorithm::Cannon, &a, &b, 4, &cfg, &policy, Some(1e-9))
                .expect_err("budget of one cannot absorb a crash");
        match err {
            RecoveryError::Exhausted { attempts, last } => {
                assert_eq!(attempts, 1);
                assert!(last.contains("crashed"), "{last}");
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn impossible_shapes_are_fatal_not_retried() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(4, 4);
        let err = multiply_with_recovery(
            Algorithm::Cannon,
            &a,
            &b,
            4,
            &MachineConfig::default(),
            &RecoveryPolicy::default(),
        )
        .expect_err("bad shapes cannot run");
        assert!(matches!(
            err,
            RecoveryError::Fatal(AlgoError::BadShapes { .. })
        ));
    }
}
