//! Deterministic, coverage-guided chaos campaigns over the algorithm
//! registry.
//!
//! A campaign repeatedly multiplies the same integer matrices under
//! randomized [`FaultPlan`]s, runs every plan through the ABFT layer
//! and [`multiply_with_recovery_tol`]'s quarantine-and-rerun loop on
//! the event engine, and checks a fixed set of invariant oracles on
//! every outcome:
//!
//! 1. **Bitwise product** — a trustworthy outcome must match the host
//!    reference multiply bit for bit (the campaign's matrices hold
//!    small integers, so f64 arithmetic is exact).
//! 2. **Report sanity** — attempt counts, the capped exponential
//!    backoff schedule, and the mutations-per-retry accounting of the
//!    [`RecoveryReport`] must be internally consistent.
//! 3. **Typed outcomes** — every failure must be one the scheduled
//!    faults explain (a deadlock needs a scheduled drop, an unroutable
//!    destination needs severed links); node panics, shape errors, or
//!    config rejections on valid input are bugs.
//! 4. **Virtual-time budget** — the final attempt must finish within a
//!    generous multiple of the healthy run's virtual time, so a
//!    schedule that spins forever (in virtual time) is caught. Host
//!    wall-clock hangs cannot happen at all: the event engine detects
//!    deadlock exactly instead of blocking.
//! 5. **Exit-code contract** — every outcome must map onto the CLI's
//!    documented `{0, 2, 3}` exit codes.
//!
//! Everything is reproducible from one seed: the campaign's PRNG is an
//! in-tree splitmix64, plans are placed on injection sites harvested
//! from a traced healthy run (so scheduled faults actually fire), and
//! the simulator itself is deterministic. Two campaigns with the same
//! seed render byte-identical reports.
//!
//! Generation is *coverage-guided*: the campaign tracks which
//! [`Coverage`] cells — fault family × schedule phase — have been
//! observed firing (via [`cubemm_simnet::FiredFault`] records, recovery
//! actions, and typed-failure evidence) and steers each new plan toward
//! cells not yet exercised.
//!
//! When an oracle fails, [`shrink_plan`] delta-debugs the offending
//! plan down to a locally minimal set of fault entries that still
//! reproduces the violation; the shrunk plan serializes to the same
//! JSON the CLI's `--fault-plan` flag accepts, making every campaign
//! failure a one-command repro.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use cubemm_core::abft::{multiply_abft_with_tol, padded_order, AbftOutcome, AbftResult};
use cubemm_core::{AlgoError, Algorithm, MachineConfig};
use cubemm_dense::{gemm, Matrix};
use cubemm_simnet::{
    CorruptKind, Corruption, Engine, FaultEntry, FaultPlan, FiredKind, RunError, SendError,
    TraceKind,
};

use crate::recovery::{
    multiply_with_recovery_tol, RecoveryAction, RecoveryError, RecoveryPolicy, RecoveryReport,
};

/// Verification tolerance used by every campaign trial. The campaign's
/// matrices hold small integers, so any nonzero residual is damage;
/// the epsilon only absorbs nothing-at-all.
pub const CHAOS_TOL: f64 = 1e-9;

/// Machine sizes a campaign probes, smallest first (smaller machines
/// make faster trials; every registry algorithm accepts at least one).
const P_MENU: [usize; 4] = [4, 8, 16, 64];

// ---------------------------------------------------------------------------
// Seeded PRNG
// ---------------------------------------------------------------------------

/// One step of splitmix64: a tiny, well-mixed generator that keeps the
/// campaign free of external dependencies while staying reproducible
/// across platforms (pure wrapping integer arithmetic).
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The campaign's deterministic random stream (splitmix64).
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A stream reproducible from `seed`.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `0..n` (`0` when `n == 0`). The modulo bias
    /// at 64 bits is far below anything a fault campaign can observe.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

// ---------------------------------------------------------------------------
// Fault-space coverage
// ---------------------------------------------------------------------------

/// The fault families a campaign schedules — the rows of the coverage
/// grid. Step-keyed families are crossed with a [`SchedulePhase`];
/// whole-run families (a permanently dead link, a strict plan, a
/// straggler's clock) occupy a single cell each because they have no
/// meaningful placement within the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    /// A dead link under lenient routing (detours, extra hops).
    DeadLink,
    /// A dead link under a strict plan (the send fails typed; recovery
    /// must relax strictness).
    StrictDeadLink,
    /// A degraded link firing only inside a schedule window.
    DegradedLink,
    /// A straggler node (whole-run clock multiplier).
    Straggler,
    /// One scheduled message drop.
    Drop,
    /// A bit-flip corruption of one payload word in flight.
    CorruptFlip,
    /// An additive perturbation of one payload word in flight.
    CorruptPerturb,
    /// A scheduled node crash.
    Crash,
}

impl Family {
    /// Every family, in coverage-grid order.
    pub const ALL: [Family; 8] = [
        Family::DeadLink,
        Family::StrictDeadLink,
        Family::DegradedLink,
        Family::Straggler,
        Family::Drop,
        Family::CorruptFlip,
        Family::CorruptPerturb,
        Family::Crash,
    ];

    /// Whether the family is keyed to a schedule step (and therefore
    /// crossed with all three phases in the coverage grid).
    pub fn stepped(self) -> bool {
        matches!(
            self,
            Family::DegradedLink
                | Family::Drop
                | Family::CorruptFlip
                | Family::CorruptPerturb
                | Family::Crash
        )
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::DeadLink => "dead-link",
            Family::StrictDeadLink => "strict-dead-link",
            Family::DegradedLink => "degraded-window",
            Family::Straggler => "straggler",
            Family::Drop => "drop",
            Family::CorruptFlip => "corrupt-flip",
            Family::CorruptPerturb => "corrupt-perturb",
            Family::Crash => "crash",
        }
    }
}

/// Thirds of a node schedule, used to place step-keyed faults early,
/// mid, or late relative to the shortest per-node schedule of the
/// healthy probe run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SchedulePhase {
    /// The first third of the schedule.
    Early,
    /// The middle third.
    Mid,
    /// The final third.
    Late,
}

impl SchedulePhase {
    /// Every phase, in order.
    pub const ALL: [SchedulePhase; 3] = [
        SchedulePhase::Early,
        SchedulePhase::Mid,
        SchedulePhase::Late,
    ];

    /// Which phase `step` falls into for a schedule of `rounds`
    /// communication calls (steps past the end clamp to `Late`).
    pub fn of(step: u64, rounds: u64) -> SchedulePhase {
        if rounds == 0 {
            return SchedulePhase::Early;
        }
        match (step.saturating_mul(3) / rounds).min(2) {
            0 => SchedulePhase::Early,
            1 => SchedulePhase::Mid,
            _ => SchedulePhase::Late,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulePhase::Early => "early",
            SchedulePhase::Mid => "mid",
            SchedulePhase::Late => "late",
        }
    }
}

/// One coverage cell: a fault family and (for step-keyed families) the
/// schedule phase it was placed in. Whole-run families canonicalize to
/// [`SchedulePhase::Early`].
pub type Cell = (Family, SchedulePhase);

/// Which cells of the fault space a campaign has *observed firing* —
/// a scheduled entry that never fires earns nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    covered: BTreeSet<Cell>,
}

impl Coverage {
    /// An empty grid.
    pub fn new() -> Coverage {
        Coverage::default()
    }

    /// Every cell of the grid: stepped families × 3 phases, whole-run
    /// families × 1 — eighteen cells total.
    pub fn all_cells() -> Vec<Cell> {
        let mut out = Vec::new();
        for family in Family::ALL {
            if family.stepped() {
                for phase in SchedulePhase::ALL {
                    out.push((family, phase));
                }
            } else {
                out.push((family, SchedulePhase::Early));
            }
        }
        out
    }

    /// Total cell count (18).
    pub fn total() -> usize {
        Coverage::all_cells().len()
    }

    /// Records a cell as exercised.
    pub fn mark(&mut self, cell: Cell) {
        self.covered.insert(cell);
    }

    /// Cells observed firing so far.
    pub fn covered(&self) -> usize {
        self.covered.len()
    }

    /// Coverage as a percentage of the grid.
    pub fn percent(&self) -> f64 {
        100.0 * self.covered() as f64 / Coverage::total() as f64
    }

    /// Grid cells not yet observed firing, in grid order.
    pub fn uncovered(&self) -> Vec<Cell> {
        Coverage::all_cells()
            .into_iter()
            .filter(|c| !self.covered.contains(c))
            .collect()
    }

    /// Folds another grid into this one (the `chaos all` aggregate).
    pub fn merge(&mut self, other: &Coverage) {
        for &cell in &other.covered {
            self.covered.insert(cell);
        }
    }

    /// `"17/18 fault-space cells (94.4%)"`.
    pub fn summary(&self) -> String {
        format!(
            "{}/{} fault-space cells ({:.1}%)",
            self.covered(),
            Coverage::total(),
            self.percent()
        )
    }
}

// ---------------------------------------------------------------------------
// Healthy probe: where can faults actually land?
// ---------------------------------------------------------------------------

/// One message-injection site harvested from the healthy trace: the
/// `seq`-th injection `from` makes toward destination `to`, issued at
/// the sender's communication-call index `step`.
#[derive(Debug, Clone, Copy)]
struct DropSite {
    from: usize,
    to: usize,
    seq: u64,
    step: u64,
}

/// One directed-edge crossing site: the `seq`-th time the originating
/// sender's traffic crosses the hypercube edge `u -> v`, at the
/// sender's call index `step`. Valid corruption and degradation
/// placements by construction.
#[derive(Debug, Clone, Copy)]
struct EdgeSite {
    u: usize,
    v: usize,
    seq: u64,
    step: u64,
}

/// What a traced healthy run of one `(algo, n, p)` point reveals about
/// the fault space: every place a scheduled fault is guaranteed to
/// fire, plus the baselines the oracles compare against.
#[derive(Debug, Clone)]
pub struct Probe {
    /// The algorithm probed.
    pub algo: Algorithm,
    /// Logical matrix order of the campaign's multiplies.
    pub n: usize,
    /// Machine size chosen from [`P_MENU`].
    pub p: usize,
    /// Longest per-node schedule length — the phase denominator (a
    /// zero-rotation node may issue far fewer calls than its busiest
    /// peer, so per-node placement consults [`Probe::node_rounds`]).
    pub rounds: u64,
    /// Communication calls each node issues on the healthy run.
    pub node_rounds: Vec<u64>,
    /// Healthy virtual time, the budget oracle's baseline.
    pub elapsed: f64,
    drop_sites: Vec<DropSite>,
    edge_sites: Vec<EdgeSite>,
    /// Undirected hypercube edges that carry traffic.
    edges: Vec<(usize, usize)>,
}

/// Deterministic small-integer test matrices (exact in f64, so the
/// bitwise oracle is meaningful).
pub fn ints(n: usize, salt: usize) -> Matrix {
    Matrix::from_fn(n, n, |r, c| ((r * 7 + c * 3 + salt) % 5) as f64 - 2.0)
}

fn hamming(a: usize, b: usize) -> u32 {
    ((a ^ b) as u64).count_ones()
}

/// The healthy dimension-ordered hypercube path from `from` to `to` —
/// exactly the route the simulator takes when no dead link forces a
/// detour, so crossing counts derived from it match the injector's.
fn dim_path(from: usize, to: usize) -> Vec<usize> {
    let mut path = Vec::new();
    let mut cur = from;
    let diff = from ^ to;
    let mut d = 0;
    while diff >> d != 0 {
        if diff >> d & 1 == 1 {
            cur ^= 1 << d;
            path.push(cur);
        }
        d += 1;
    }
    path
}

/// Probes `algo` at order `n`: picks the smallest machine from
/// [`P_MENU`] whose ABFT padding stays reasonable *and* whose schedule
/// is deep enough to distinguish early/mid/late placement (tiny grids
/// can finish in two communication calls), runs one traced healthy
/// protected multiply, and harvests every injection site.
pub fn probe(algo: Algorithm, n: usize) -> Result<Probe, String> {
    const MIN_SCHEDULE: u64 = 6;
    let mut shallow = None;
    for &p in &P_MENU {
        match padded_order(algo, n, p) {
            Ok(total) if total <= 4 * n => {}
            _ => continue,
        }
        let Ok(probe) = probe_at(algo, n, p) else {
            continue;
        };
        if probe.rounds >= MIN_SCHEDULE {
            return Ok(probe);
        }
        if shallow.is_none() {
            shallow = Some(probe);
        }
    }
    shallow.ok_or_else(|| {
        format!(
            "{}: no machine size in {P_MENU:?} accepts order {n} with reasonable padding",
            algo.name()
        )
    })
}

fn probe_at(algo: Algorithm, n: usize, p: usize) -> Result<Probe, String> {
    let (a, b) = (ints(n, 1), ints(n, 2));
    let cfg = MachineConfig::default()
        .with_engine(Engine::Event)
        .with_trace();
    let res = multiply_abft_with_tol(algo, &a, &b, p, &cfg, Some(CHAOS_TOL))
        .map_err(|e| format!("{}: healthy probe failed: {e}", algo.name()))?;
    if !res.outcome.is_good() {
        return Err(format!(
            "{}: healthy probe produced untrustworthy outcome {:?}",
            algo.name(),
            res.outcome
        ));
    }
    let mut drop_sites = Vec::new();
    let mut edge_sites = Vec::new();
    let mut edges = BTreeSet::new();
    // Injection counters per (sender, destination) and per-sender
    // directed-edge crossing counters, replayed in trace program order
    // so harvested sequence numbers match the injector's bookkeeping.
    let mut injections: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    let mut crossings: BTreeMap<(usize, usize, usize), u64> = BTreeMap::new();
    for events in &res.traces {
        for ev in events {
            let TraceKind::Send { to, .. } = ev.kind else {
                continue;
            };
            let from = ev.node;
            let step = ev.round.saturating_sub(1);
            let seq = injections.entry((from, to)).or_insert(0);
            drop_sites.push(DropSite {
                from,
                to,
                seq: *seq,
                step,
            });
            *seq += 1;
            let mut cur = from;
            for next in dim_path(from, to) {
                let crossing = crossings.entry((from, cur, next)).or_insert(0);
                if hamming(cur, next) == 1 {
                    edge_sites.push(EdgeSite {
                        u: cur,
                        v: next,
                        seq: *crossing,
                        step,
                    });
                    edges.insert((cur.min(next), cur.max(next)));
                }
                *crossing += 1;
                cur = next;
            }
        }
    }
    if drop_sites.is_empty() || edges.is_empty() {
        return Err(format!(
            "{}: healthy probe traced no communication to inject into",
            algo.name()
        ));
    }
    Ok(Probe {
        algo,
        n,
        p,
        rounds: res.stats.nodes.iter().map(|n| n.rounds).max().unwrap_or(0),
        node_rounds: res.stats.nodes.iter().map(|n| n.rounds).collect(),
        elapsed: res.stats.elapsed,
        drop_sites,
        edge_sites,
        edges: edges.into_iter().collect(),
    })
}

// ---------------------------------------------------------------------------
// Steered plan generation
// ---------------------------------------------------------------------------

/// One fault entry a generated plan carries, tagged with the coverage
/// cell its placement targets.
#[derive(Debug, Clone)]
pub struct Placed {
    /// The coverage cell this entry aims at (phase recomputed from the
    /// site actually chosen, so crediting stays honest).
    pub cell: Cell,
    /// The scheduled entry.
    pub entry: FaultEntry,
}

/// Picks the cells a new plan should aim at: uncovered cells first
/// (the steering), uniform over the grid once everything is covered.
fn pick_cells(coverage: &Coverage, rng: &mut ChaosRng, k: usize) -> Vec<Cell> {
    let uncovered = coverage.uncovered();
    let all = Coverage::all_cells();
    (0..k)
        .map(|_| {
            let pool = if uncovered.is_empty() {
                &all
            } else {
                &uncovered
            };
            pool[rng.below(pool.len() as u64) as usize]
        })
        .collect()
}

/// Sites whose sender-step falls in `phase` of the probe's schedule,
/// falling back to the whole list when the phase bucket is empty.
fn phase_slice<T: Copy>(
    sites: &[T],
    step_of: impl Fn(&T) -> u64,
    phase: SchedulePhase,
    rounds: u64,
) -> Vec<T> {
    let hits: Vec<T> = sites
        .iter()
        .filter(|s| SchedulePhase::of(step_of(s), rounds) == phase)
        .copied()
        .collect();
    if hits.is_empty() {
        sites.to_vec()
    } else {
        hits
    }
}

/// Generates one fault plan aimed at `cells`, returning the plan and
/// the per-entry placement record used for coverage crediting.
pub fn generate_plan(
    probe: &Probe,
    cells: &[Cell],
    rng: &mut ChaosRng,
) -> (FaultPlan, Vec<Placed>) {
    // At most one corruption per plan: the ABFT checksum code promises
    // detection for a *single* silent corruption, and two colluding
    // corruptions really can forge a self-consistent wrong product
    // (e.g. two sign flips on one broadcast word and its checksum-row
    // counterpart — a campaign-found, shrinker-minimized certificate;
    // see DESIGN.md). Scheduling past the declared fault model would
    // make the bitwise oracle flag behavior the detector never claimed
    // to handle.
    //
    // Corruption is also exclusive with dead links, for the same
    // reason one step removed: a lenient detour reroutes a *second*
    // sender's traffic across the corrupting edge, so the one
    // scheduled entry fires once per crossing sender — an effective
    // double corruption from a single-entry plan (campaign-found on
    // 3dd and shrunk to dead [0,2] + one corruption on 3->1, which
    // forged a 7-entry "correction" over a wrong product).
    let mut cells = cells.to_vec();
    let (mut corrupt_seen, mut dead_seen) = (false, false);
    cells.retain(|&(family, _)| {
        let is_corrupt = matches!(family, Family::CorruptFlip | Family::CorruptPerturb);
        let is_dead = matches!(family, Family::DeadLink | Family::StrictDeadLink);
        let keep = !(is_corrupt && (corrupt_seen || dead_seen)) && !(is_dead && corrupt_seen);
        if keep {
            corrupt_seen |= is_corrupt;
            dead_seen |= is_dead;
        }
        keep
    });
    let mut entries = Vec::new();
    let mut placed = Vec::new();
    let mut strict = false;
    let rounds = probe.rounds;
    for &(family, phase) in &cells {
        let (cell, entry) = match family {
            Family::DeadLink | Family::StrictDeadLink => {
                let (a, b) = probe.edges[rng.below(probe.edges.len() as u64) as usize];
                if family == Family::StrictDeadLink {
                    strict = true;
                }
                ((family, SchedulePhase::Early), FaultEntry::Dead { a, b })
            }
            Family::Straggler => {
                // A straggler only observably fires if the node issues
                // at least one communication call.
                let talkers: Vec<usize> = (0..probe.p)
                    .filter(|&nd| probe.node_rounds[nd] > 0)
                    .collect();
                let node = talkers[rng.below(talkers.len() as u64) as usize];
                let slowdown = rng.range_f64(1.5, 4.0);
                (
                    (family, SchedulePhase::Early),
                    FaultEntry::Straggler { node, slowdown },
                )
            }
            Family::DegradedLink => {
                let pool = phase_slice(&probe.edge_sites, |s| s.step, phase, rounds);
                let site = pool[rng.below(pool.len() as u64) as usize];
                let ts = rng.range_f64(1.5, 8.0);
                let tw = rng.range_f64(1.5, 8.0);
                (
                    (family, SchedulePhase::of(site.step, rounds)),
                    FaultEntry::Degraded {
                        a: site.u.min(site.v),
                        b: site.u.max(site.v),
                        quality: cubemm_simnet::LinkQuality {
                            ts_factor: ts,
                            tw_factor: tw,
                        },
                        window: Some((site.step, site.step + 1 + rng.below(2))),
                    },
                )
            }
            Family::Drop => {
                let pool = phase_slice(&probe.drop_sites, |s| s.step, phase, rounds);
                let site = pool[rng.below(pool.len() as u64) as usize];
                (
                    (family, SchedulePhase::of(site.step, rounds)),
                    FaultEntry::Drop {
                        from: site.from,
                        to: site.to,
                        seq: site.seq,
                    },
                )
            }
            Family::CorruptFlip | Family::CorruptPerturb => {
                let pool = phase_slice(&probe.edge_sites, |s| s.step, phase, rounds);
                let site = pool[rng.below(pool.len() as u64) as usize];
                // Damage is kept *exactly correctable*: sign flips and
                // integer deltas stay exact in f64 against the
                // campaign's small-integer matrices, so a corrected
                // product must equal the reference to the last bit. A
                // mantissa flip or fractional delta would instead make
                // the residual sums round, leaving a legitimate
                // ulp-sized error the bitwise oracle cannot tell from
                // a miscorrection. (Non-finite damage is covered by a
                // dense-layer regression test.)
                let kind = if family == Family::CorruptFlip {
                    CorruptKind::BitFlip { bit: 63 }
                } else {
                    let mag = (16 + rng.below(1009)) as f64;
                    let delta = if rng.below(2) == 0 { mag } else { -mag };
                    CorruptKind::Perturb { delta }
                };
                (
                    (family, SchedulePhase::of(site.step, rounds)),
                    FaultEntry::Corrupt {
                        from: site.u,
                        to: site.v,
                        seq: site.seq,
                        corruption: Corruption {
                            word: rng.below(64) as usize,
                            kind,
                        },
                    },
                )
            }
            Family::Crash => {
                let lo = match phase {
                    SchedulePhase::Early => 0,
                    SchedulePhase::Mid => rounds / 3,
                    SchedulePhase::Late => 2 * rounds / 3,
                };
                let hi = match phase {
                    SchedulePhase::Early => (rounds / 3).max(lo + 1),
                    SchedulePhase::Mid => (2 * rounds / 3).max(lo + 1),
                    SchedulePhase::Late => rounds.max(lo + 1),
                };
                // The crash only fires if the node's own schedule
                // reaches the step, so pick among nodes that get there.
                let reachers: Vec<usize> = (0..probe.p)
                    .filter(|&nd| probe.node_rounds[nd] > lo)
                    .collect();
                let node = if reachers.is_empty() {
                    (0..probe.p)
                        .max_by_key(|&nd| probe.node_rounds[nd])
                        .unwrap_or(0)
                } else {
                    reachers[rng.below(reachers.len() as u64) as usize]
                };
                let hi = hi.min(probe.node_rounds[node].max(lo + 1));
                let step = lo + rng.below(hi - lo);
                (
                    (family, SchedulePhase::of(step, rounds)),
                    FaultEntry::Crash { node, step },
                )
            }
        };
        placed.push(Placed {
            cell,
            entry: entry.clone(),
        });
        entries.push(entry);
    }
    (FaultPlan::from_entries(&entries, strict), placed)
}

// ---------------------------------------------------------------------------
// Trials and oracles
// ---------------------------------------------------------------------------

/// Outcome of one chaos trial: the recovery loop's own result type.
pub type TrialOutcome = Result<(AbftResult, RecoveryReport), RecoveryError>;

/// Runs one protected multiply under `plan` on the event engine.
pub fn run_trial(
    algo: Algorithm,
    a: &Matrix,
    b: &Matrix,
    p: usize,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> TrialOutcome {
    let cfg = MachineConfig::default()
        .with_engine(Engine::Event)
        .with_faults(plan.clone());
    multiply_with_recovery_tol(algo, a, b, p, &cfg, policy, Some(CHAOS_TOL))
}

/// The CLI exit-code contract for one trial: `0` verified product, `3`
/// deadlock (the documented algorithm-bug signal), `2` every other
/// failure. Total by construction; the oracle asserts it stays that
/// way.
pub fn trial_exit_code(outcome: &TrialOutcome) -> i32 {
    match outcome {
        Ok(_) => 0,
        Err(RecoveryError::Fatal(AlgoError::Sim(RunError::Deadlock { .. }))) => 3,
        Err(_) => 2,
    }
}

/// Everything the oracles need to judge one trial.
pub struct TrialContext<'a> {
    /// The plan the trial ran under.
    pub plan: &'a FaultPlan,
    /// Host-computed reference product.
    pub reference: &'a Matrix,
    /// The policy the trial ran under.
    pub policy: &'a RecoveryPolicy,
    /// Virtual-time ceiling for the final attempt.
    pub budget: f64,
    /// Treat `Corrected` outcomes as violations (shrink-demo mode).
    pub fail_on_corrected: bool,
}

/// Applies every oracle to one trial; the returned descriptions are
/// empty exactly when the trial is unimpeachable.
pub fn check_trial(outcome: &TrialOutcome, ctx: &TrialContext<'_>) -> Vec<String> {
    let mut violations = Vec::new();
    let code = trial_exit_code(outcome);
    if !matches!(code, 0 | 2 | 3) || (code == 0) != outcome.is_ok() {
        violations.push(format!("exit-code contract broken: outcome maps to {code}"));
    }
    match outcome {
        Ok((res, report)) => {
            if !res.outcome.is_good() {
                violations.push(format!(
                    "recovery returned an untrustworthy outcome: {:?}",
                    res.outcome
                ));
            }
            if res.c != *ctx.reference {
                violations.push("product differs bitwise from the host reference".to_string());
            }
            if ctx.fail_on_corrected && matches!(res.outcome, AbftOutcome::Corrected { .. }) {
                violations
                    .push("corrected outcome treated as failure (fail-on-corrected)".to_string());
            }
            let max = ctx.policy.max_attempts.max(1);
            if report.attempts == 0 || report.attempts > max {
                violations.push(format!(
                    "report claims {} attempts under a budget of {max}",
                    report.attempts
                ));
            }
            if report.backoff_delays.len() != report.attempts.saturating_sub(1) {
                violations.push(format!(
                    "{} backoff delays recorded for {} attempts",
                    report.backoff_delays.len(),
                    report.attempts
                ));
            }
            let total: f64 = report.backoff_delays.iter().sum();
            if report.backoff_spent != total {
                violations.push(format!(
                    "backoff_spent {} disagrees with its own delays (sum {total})",
                    report.backoff_spent
                ));
            }
            let mut expected = ctx.policy.backoff;
            for (i, &delay) in report.backoff_delays.iter().enumerate() {
                if delay != expected.min(ctx.policy.max_backoff) {
                    violations.push(format!(
                        "backoff delay {i} is {delay}, schedule says {}",
                        expected.min(ctx.policy.max_backoff)
                    ));
                    break;
                }
                expected *= ctx.policy.backoff_factor;
            }
            if (report.attempts == 1) != report.actions.is_empty() {
                violations.push(format!(
                    "{} attempts with {} plan mutations",
                    report.attempts,
                    report.actions.len()
                ));
            }
            if res.stats.elapsed > ctx.budget {
                violations.push(format!(
                    "virtual time {} blew the budget {}",
                    res.stats.elapsed, ctx.budget
                ));
            }
        }
        Err(RecoveryError::Exhausted { attempts, .. }) => {
            let max = ctx.policy.max_attempts.max(1);
            if *attempts == 0 || *attempts > max {
                violations.push(format!(
                    "exhaustion after {attempts} attempts under a budget of {max}"
                ));
            }
        }
        Err(RecoveryError::Fatal(e)) => {
            let explained = match e {
                AlgoError::Sim(RunError::Deadlock { .. }) => {
                    // A lost message legitimately starves its receiver —
                    // but only if a drop was actually scheduled.
                    ctx.plan.scheduled_drops().next().is_some()
                }
                AlgoError::Sim(RunError::LinkDead {
                    error: SendError::Unroutable { .. },
                    ..
                }) => {
                    // Severed links (scheduled dead links, or quarantine
                    // killing a corruptor's edge) can cut a node off.
                    ctx.plan.dead_links().next().is_some() || ctx.plan.has_corruptions()
                }
                _ => false,
            };
            if !explained {
                violations.push(format!("unexplained fatal outcome: {e}"));
            }
        }
    }
    violations
}

/// Credits coverage cells whose placed entries demonstrably fired,
/// using simulator [`FiredFault`](cubemm_simnet::FiredFault) records,
/// recovery actions, and the shape of typed failures as evidence.
pub fn credit_coverage(coverage: &mut Coverage, placed: &[Placed], outcome: &TrialOutcome) {
    let fired: Vec<(FiredKind, usize, usize)> = match outcome {
        Ok((res, _)) => res
            .stats
            .fired_faults()
            .map(|f| (f.kind, f.a, f.b))
            .collect(),
        Err(_) => Vec::new(),
    };
    let actions: &[RecoveryAction] = match outcome {
        Ok((_, report)) => &report.actions,
        Err(_) => &[],
    };
    for place in placed {
        let hit = match place.entry {
            FaultEntry::Dead { a, b } => match outcome {
                Err(RecoveryError::Fatal(AlgoError::Sim(RunError::LinkDead {
                    error: SendError::Unroutable { .. },
                    ..
                }))) => true,
                _ => {
                    fired.contains(&(FiredKind::DeadLink, a, b))
                        || actions.contains(&RecoveryAction::RelaxedStrictness)
                }
            },
            FaultEntry::Degraded { a, b, .. } => fired.contains(&(FiredKind::DegradedLink, a, b)),
            FaultEntry::Straggler { node, .. } => {
                fired.contains(&(FiredKind::Straggler, node, node))
            }
            FaultEntry::Drop { from, to, .. } => {
                fired.contains(&(FiredKind::Drop, from, to))
                    || actions.contains(&RecoveryAction::UnblockedDrops { from, to })
                    || matches!(
                        outcome,
                        Err(RecoveryError::Fatal(AlgoError::Sim(RunError::Deadlock {
                            blocked,
                        }))) if blocked.iter().any(|w| w.node == to && w.from == from)
                    )
            }
            FaultEntry::Corrupt { from, to, .. } => {
                fired.contains(&(FiredKind::Corruption, from, to))
                    || actions.contains(&RecoveryAction::QuarantinedLink {
                        a: from.min(to),
                        b: from.max(to),
                    })
                    || matches!(
                        outcome,
                        Err(RecoveryError::Exhausted { last, .. }) if last.contains("uncorrectable")
                    )
            }
            FaultEntry::Crash { node, .. } => {
                actions.contains(&RecoveryAction::RebootedNode { node })
                    || matches!(
                        outcome,
                        Err(RecoveryError::Exhausted { last, .. }) if last.contains("crashed")
                    )
            }
        };
        if hit {
            coverage.mark(place.cell);
        }
    }
}

// ---------------------------------------------------------------------------
// Delta-debugging shrinker
// ---------------------------------------------------------------------------

/// Reduces `plan` to a locally minimal plan for which `still_fails`
/// holds, by coarse-to-fine removal of [`FaultEntry`]s (classic ddmin
/// chunking) followed by an attempt to drop plan-wide strictness. The
/// predicate is assumed deterministic (true of every simulator-backed
/// check in this crate). If the failure survives an *empty* plan the
/// empty plan is returned — the failure was never fault-dependent,
/// which is itself diagnostic.
pub fn shrink_plan(plan: &FaultPlan, mut still_fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    let strict = plan.is_strict();
    let mut entries = plan.entries();
    let mut chunk = entries.len().div_ceil(2).max(1);
    loop {
        let mut i = 0;
        while i < entries.len() {
            let mut candidate = entries.clone();
            candidate.drain(i..(i + chunk).min(candidate.len()));
            if still_fails(&FaultPlan::from_entries(&candidate, strict)) {
                entries = candidate;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    let mut strict = strict;
    if strict && still_fails(&FaultPlan::from_entries(&entries, false)) {
        strict = false;
    }
    FaultPlan::from_entries(&entries, strict)
}

// ---------------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------------

/// Knobs of one campaign.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Trials to run.
    pub runs: usize,
    /// Logical matrix order of every trial.
    pub n: usize,
    /// Most fault entries per generated plan.
    pub max_entries: usize,
    /// Treat `Corrected` outcomes as violations — a deliberate way to
    /// exercise the shrinker end to end (any corruption plan "fails",
    /// and the minimal repro is the single corrupting entry).
    pub fail_on_corrected: bool,
    /// Final-attempt virtual time may be at most this multiple of the
    /// healthy baseline (degradations ≤ 8×, stragglers ≤ 4×, detours
    /// and backoff small: an order of magnitude of slack on top).
    pub budget_factor: f64,
    /// Recovery policy for every trial.
    pub policy: RecoveryPolicy,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            runs: 200,
            n: 6,
            max_entries: 3,
            fail_on_corrected: false,
            budget_factor: 64.0,
            policy: RecoveryPolicy::default(),
        }
    }
}

/// One oracle failure, shrunk to its minimal reproducing plan.
#[derive(Debug, Clone)]
pub struct ViolationRecord {
    /// 0-based trial index within the campaign.
    pub run: usize,
    /// Every oracle that fired on the trial.
    pub violations: Vec<String>,
    /// The generated plan, as `--fault-plan` JSON.
    pub plan_json: String,
    /// The shrunk minimal repro, as `--fault-plan` JSON.
    pub shrunk_json: String,
    /// Fault entries remaining after shrinking.
    pub shrunk_entries: usize,
}

/// What one campaign did and found.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The algorithm exercised.
    pub algo: Algorithm,
    /// The seed the campaign is reproducible from.
    pub seed: u64,
    /// Trials run.
    pub runs: usize,
    /// Matrix order of every trial.
    pub n: usize,
    /// Machine size the probe chose.
    pub p: usize,
    /// Shortest healthy per-node schedule (phase denominator).
    pub rounds: u64,
    /// Trials that verified clean on the first attempt.
    pub clean: usize,
    /// Trials whose damage the ABFT layer corrected in place.
    pub corrected: usize,
    /// Trials that needed at least one recovery retry.
    pub recovered: usize,
    /// Trials that failed in an allowed, typed way (deadlocks from
    /// drops, exhausted budgets, severed machines).
    pub typed_failures: usize,
    /// Fault-space cells observed firing.
    pub coverage: Coverage,
    /// Oracle failures, each with a shrunk repro.
    pub violations: Vec<ViolationRecord>,
}

impl CampaignReport {
    /// Deterministic human-readable summary (byte-identical for a
    /// fixed seed).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chaos {}: seed {}, {} runs at n={} on p={} (shortest schedule {} steps)",
            self.algo.name(),
            self.seed,
            self.runs,
            self.n,
            self.p,
            self.rounds
        );
        let _ = writeln!(
            out,
            "  outcomes: {} clean, {} corrected, {} recovered, {} typed failures, {} violations",
            self.clean,
            self.corrected,
            self.recovered,
            self.typed_failures,
            self.violations.len()
        );
        let _ = writeln!(out, "  coverage: {}", self.coverage.summary());
        let uncovered = self.coverage.uncovered();
        if !uncovered.is_empty() {
            let cells: Vec<String> = uncovered
                .iter()
                .map(|(f, ph)| {
                    if f.stepped() {
                        format!("{}/{}", f.name(), ph.name())
                    } else {
                        f.name().to_string()
                    }
                })
                .collect();
            let _ = writeln!(out, "  uncovered: {}", cells.join(", "));
        }
        for v in &self.violations {
            let _ = writeln!(
                out,
                "  VIOLATION at run {}: {} (shrunk to {} entr{})",
                v.run,
                v.violations.join("; "),
                v.shrunk_entries,
                if v.shrunk_entries == 1 { "y" } else { "ies" }
            );
        }
        out
    }
}

/// Stable per-algorithm salt so `chaos all` gives every campaign its
/// own stream while staying reproducible from the one seed.
fn algo_salt(algo: Algorithm) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for byte in algo.name().bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix(h)
}

/// Runs one coverage-guided campaign against `algo`. Fails only on
/// *setup* problems (no machine size fits, the healthy probe is
/// broken); oracle failures are reported, shrunk, and returned in the
/// [`CampaignReport`].
pub fn run_campaign(
    algo: Algorithm,
    seed: u64,
    opts: &ChaosOptions,
) -> Result<CampaignReport, String> {
    let probe = probe(algo, opts.n)?;
    let (a, b) = (ints(opts.n, 1), ints(opts.n, 2));
    let reference = gemm::reference(&a, &b);
    let budget = opts.budget_factor * (probe.elapsed + 1.0)
        + opts.policy.max_backoff * opts.policy.max_attempts as f64;
    let mut rng = ChaosRng::new(seed ^ algo_salt(algo));
    let mut report = CampaignReport {
        algo,
        seed,
        runs: opts.runs,
        n: opts.n,
        p: probe.p,
        rounds: probe.rounds,
        clean: 0,
        corrected: 0,
        recovered: 0,
        typed_failures: 0,
        coverage: Coverage::new(),
        violations: Vec::new(),
    };
    for run in 0..opts.runs {
        let k = 1 + rng.below(opts.max_entries.max(1) as u64) as usize;
        let cells = pick_cells(&report.coverage, &mut rng, k);
        let (plan, placed) = generate_plan(&probe, &cells, &mut rng);
        let outcome = run_trial(algo, &a, &b, probe.p, &plan, &opts.policy);
        credit_coverage(&mut report.coverage, &placed, &outcome);
        match &outcome {
            Ok((res, rep)) => {
                if rep.attempts > 1 {
                    report.recovered += 1;
                } else if matches!(res.outcome, AbftOutcome::Corrected { .. }) {
                    report.corrected += 1;
                } else {
                    report.clean += 1;
                }
            }
            Err(_) => report.typed_failures += 1,
        }
        let ctx = TrialContext {
            plan: &plan,
            reference: &reference,
            policy: &opts.policy,
            budget,
            fail_on_corrected: opts.fail_on_corrected,
        };
        let violations = check_trial(&outcome, &ctx);
        if violations.is_empty() {
            continue;
        }
        let shrunk = shrink_plan(&plan, |candidate| {
            let o = run_trial(algo, &a, &b, probe.p, candidate, &opts.policy);
            let cctx = TrialContext {
                plan: candidate,
                reference: &reference,
                policy: &opts.policy,
                budget,
                fail_on_corrected: opts.fail_on_corrected,
            };
            !check_trial(&o, &cctx).is_empty()
        });
        report.violations.push(ViolationRecord {
            run,
            violations,
            plan_json: plan.to_json(),
            shrunk_json: shrunk.to_json(),
            shrunk_entries: shrunk.fault_count(),
        });
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Soak-suite plan source
// ---------------------------------------------------------------------------

/// Draws the serve soak suite's fault mix from the chaos stream: about
/// a third of jobs crash a node early, a fifth corrupt a payload word
/// on a random hypercube edge, the rest run healthy — the same ratios
/// the soak suite's quarantine-count assertions were written against.
pub fn random_soak_plan(rng: &mut ChaosRng, p: usize) -> FaultPlan {
    debug_assert!(p.is_power_of_two() && p >= 2);
    match rng.below(15) {
        0..=4 => {
            // Steps 0/1 land inside even the shortest soak schedule, so
            // every scheduled crash really fires (the quarantine-count
            // assertion depends on that).
            let node = rng.below(p as u64) as usize;
            FaultPlan::new().with_crash(node, rng.below(2))
        }
        5..=7 => {
            let dim = p.trailing_zeros();
            let from = rng.below(p as u64) as usize;
            let to = from ^ (1 << rng.below(u64::from(dim)));
            let kind = if rng.below(2) == 0 {
                CorruptKind::BitFlip { bit: 63 }
            } else {
                CorruptKind::Perturb {
                    delta: 64.0 + rng.below(960) as f64,
                }
            };
            FaultPlan::new().with_corruption(
                from,
                to,
                rng.below(2),
                Corruption {
                    word: rng.below(16) as usize,
                    kind,
                },
            )
        }
        _ => FaultPlan::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_seed_sensitive() {
        let mut x = ChaosRng::new(42);
        let mut y = ChaosRng::new(42);
        let mut z = ChaosRng::new(43);
        let xs: Vec<u64> = (0..16).map(|_| x.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| y.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| z.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        for _ in 0..64 {
            let v = x.below(7);
            assert!(v < 7);
            let f = x.range_f64(1.5, 4.0);
            assert!((1.5..4.0).contains(&f));
        }
    }

    #[test]
    fn coverage_grid_is_eighteen_cells() {
        assert_eq!(Coverage::total(), 18);
        let mut cov = Coverage::new();
        assert_eq!(cov.covered(), 0);
        assert_eq!(cov.uncovered().len(), 18);
        for cell in Coverage::all_cells() {
            cov.mark(cell);
        }
        assert_eq!(cov.covered(), 18);
        assert!(cov.uncovered().is_empty());
        assert_eq!(cov.summary(), "18/18 fault-space cells (100.0%)");
    }

    #[test]
    fn phases_split_the_schedule_in_thirds() {
        assert_eq!(SchedulePhase::of(0, 9), SchedulePhase::Early);
        assert_eq!(SchedulePhase::of(2, 9), SchedulePhase::Early);
        assert_eq!(SchedulePhase::of(3, 9), SchedulePhase::Mid);
        assert_eq!(SchedulePhase::of(6, 9), SchedulePhase::Late);
        assert_eq!(SchedulePhase::of(100, 9), SchedulePhase::Late);
        assert_eq!(SchedulePhase::of(5, 0), SchedulePhase::Early);
    }

    #[test]
    fn probe_harvests_real_injection_sites() {
        let probe = probe(Algorithm::Cannon, 6).unwrap_or_else(|e| panic!("{e}"));
        // Cannon's 2x2 and 4x4 grids finish in 2 and 5 calls; the probe
        // must keep growing the machine until phases mean something.
        assert_eq!(probe.p, 64);
        assert!(probe.rounds >= 6, "schedule too short: {}", probe.rounds);
        assert!(probe.elapsed > 0.0);
        assert!(!probe.drop_sites.is_empty());
        assert!(!probe.edge_sites.is_empty());
        for s in &probe.edge_sites {
            assert_eq!(hamming(s.u, s.v), 1, "{} -> {}", s.u, s.v);
        }
        for &(a, b) in &probe.edges {
            assert!(a < b);
            assert_eq!(hamming(a, b), 1);
        }
    }

    #[test]
    fn generated_plans_validate_and_round_trip() {
        let probe = probe(Algorithm::Cannon, 6).unwrap_or_else(|e| panic!("{e}"));
        let mut rng = ChaosRng::new(9);
        let mut cov = Coverage::new();
        for _ in 0..40 {
            let k = 1 + rng.below(3) as usize;
            let cells = pick_cells(&cov, &mut rng, k);
            let (plan, placed) = generate_plan(&probe, &cells, &mut rng);
            // The generator enforces the single-corruption fault model,
            // so it may place fewer entries than cells were requested.
            assert!(!placed.is_empty() && placed.len() <= cells.len());
            let corruptions = plan.scheduled_corruptions().count();
            assert!(corruptions <= 1, "fault model allows one corruption");
            let dead_links = plan
                .entries()
                .iter()
                .filter(|e| matches!(e, FaultEntry::Dead { .. }))
                .count();
            assert!(
                corruptions == 0 || dead_links == 0,
                "dead-link detours can re-fire a corruption entry for a \
                 second sender — an effective double fault"
            );
            plan.validate(probe.p).unwrap_or_else(|e| panic!("{e}"));
            let back = FaultPlan::from_json(&plan.to_json()).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(back, plan, "JSON round trip");
            for p in placed {
                cov.mark(p.cell); // pretend it fired, to exercise steering
            }
        }
        assert_eq!(cov.covered(), 18, "steering should reach the whole grid");
    }

    #[test]
    fn campaign_is_deterministic_and_violation_free() {
        let opts = ChaosOptions {
            runs: 30,
            ..ChaosOptions::default()
        };
        let one = run_campaign(Algorithm::Cannon, 7, &opts).unwrap_or_else(|e| panic!("{e}"));
        let two = run_campaign(Algorithm::Cannon, 7, &opts).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(one.render(), two.render(), "same seed, same bytes");
        assert!(
            one.violations.is_empty(),
            "oracles fired on a healthy stack:\n{}",
            one.render()
        );
        assert_eq!(
            one.clean + one.corrected + one.recovered + one.typed_failures,
            opts.runs
        );
        assert!(one.coverage.covered() > 6, "{}", one.coverage.summary());
        let other = run_campaign(Algorithm::Cannon, 8, &opts).unwrap_or_else(|e| panic!("{e}"));
        assert_ne!(one.render(), other.render(), "seed must matter");
    }

    #[test]
    fn shrinker_isolates_the_culprit_entry() {
        let plan = FaultPlan::new()
            .with_dead_link(0, 1)
            .with_straggler(2, 2.0)
            .with_crash(1, 0)
            .strict();
        let shrunk = shrink_plan(&plan, |cand| {
            cand.entries()
                .iter()
                .any(|e| matches!(e, FaultEntry::Crash { node: 1, .. }))
        });
        assert_eq!(shrunk.fault_count(), 1);
        assert!(!shrunk.is_strict(), "irrelevant strictness must be shed");
        assert!(matches!(
            shrunk.entries().as_slice(),
            [FaultEntry::Crash { node: 1, step: 0 }]
        ));
    }

    #[test]
    fn shrinker_reduces_fault_independent_failures_to_empty() {
        let plan = FaultPlan::new()
            .with_dead_link(0, 1)
            .with_straggler(2, 2.0)
            .with_crash(3, 1);
        let shrunk = shrink_plan(&plan, |_| true);
        assert!(shrunk.is_empty());
    }

    #[test]
    fn real_violations_shrink_to_tiny_replayable_repros() {
        // fail_on_corrected turns any firing corruption into an oracle
        // violation, exercising the shrinker against real simulator
        // runs: the minimal repro must be the corrupting entry alone.
        let opts = ChaosOptions {
            runs: 40,
            fail_on_corrected: true,
            ..ChaosOptions::default()
        };
        let report = run_campaign(Algorithm::Cannon, 11, &opts).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            !report.violations.is_empty(),
            "40 steered runs must corrupt at least once"
        );
        for v in &report.violations {
            assert!(v.shrunk_entries <= 3, "repro too big: {}", v.shrunk_json);
            let plan = FaultPlan::from_json(&v.shrunk_json).unwrap_or_else(|e| panic!("{e}"));
            plan.validate(report.p).unwrap_or_else(|e| panic!("{e}"));
            assert!(plan.has_corruptions(), "{}", v.shrunk_json);
        }
    }

    #[test]
    fn soak_plans_keep_the_suites_fault_mix() {
        let mut rng = ChaosRng::new(5);
        let (mut crashes, mut corruptions, mut healthy) = (0, 0, 0);
        for _ in 0..600 {
            let plan = random_soak_plan(&mut rng, 8);
            plan.validate(8).unwrap_or_else(|e| panic!("{e}"));
            if plan.scheduled_crashes().next().is_some() {
                crashes += 1;
            } else if plan.has_corruptions() {
                corruptions += 1;
            } else {
                healthy += 1;
            }
        }
        assert!(crashes > 150, "{crashes}");
        assert!(corruptions > 60, "{corruptions}");
        assert!(healthy > 250, "{healthy}");
    }
}
