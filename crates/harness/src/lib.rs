//! Harness utilities shared by the workspace-level examples
//! (`examples/*.rs` at the repository root), the cross-crate integration
//! tests (`tests/*.rs`), and the CLI's experiment drivers.
//!
//! The main export is [`run_grid`]: a parallel driver for sweeps over
//! independent simulated-machine runs. Each grid point spawns its own
//! `p`-node machine, so the driver throttles admission with a global
//! *node-thread budget* rather than a plain job count — four concurrent
//! 512-node runs are a very different load from four 8-node runs.
//!
//! Determinism: each run's virtual-time results depend only on its own
//! configuration (see the `cubemm-simnet` crate docs), and [`run_grid`]
//! returns results indexed exactly like its input slice, so a grid's
//! output is bitwise identical at any `jobs` value — property-tested by
//! the workspace determinism suite.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

pub mod chaos;
pub mod recovery;

/// Default cap on simulated node threads alive at once across a grid
/// ([`run_grid`]). Big enough that any single run (the largest machine
/// in the evaluation is 512 nodes) always fits; small enough that a
/// parallel sweep cannot pile thousands of OS threads onto the host.
pub const DEFAULT_NODE_BUDGET: usize = 1024;

/// The number of host threads a `p`-node run occupies under `engine` —
/// the weight a [`run_grid`] caller should charge against the budget.
/// Threaded runs spawn one OS thread per simulated node; event-driven
/// runs multiplex every node onto the calling thread, so even a
/// p = 65536 sweep point costs one unit.
pub fn node_weight(engine: cubemm_simnet::Engine, p: usize) -> usize {
    match engine {
        cubemm_simnet::Engine::Threaded => p,
        cubemm_simnet::Engine::Event => 1,
    }
}

/// Locks ignoring poisoning: budget and result state stay consistent
/// under every partial update, and a panicking grid task must not
/// deadlock its siblings.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A counting budget of simulated node threads, shared by every worker
/// of a [`run_grid`] call and used as the admission controller of the
/// `cubemm-serve` machine pool.
///
/// `acquire(p)` blocks until `p` units are free and returns a permit
/// that releases them on drop. Requests are clamped to the capacity, so
/// a run bigger than the whole budget still executes (alone) instead of
/// deadlocking. Services that must *reject* instead of block use
/// [`ThreadBudget::try_acquire`], which reports an oversized request as
/// a typed [`BudgetError`] and a momentarily full budget as `None`.
#[derive(Debug)]
pub struct ThreadBudget {
    capacity: usize,
    available: Mutex<usize>,
    freed: Condvar,
}

/// Why a non-blocking budget request can never succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetError {
    /// The request is larger than the whole budget: waiting would never
    /// help, so admission control must reject the job outright instead
    /// of deadlocking behind it.
    ExceedsCapacity {
        /// The rejected request size.
        want: usize,
        /// The budget's total capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::ExceedsCapacity { want, capacity } => write!(
                f,
                "request for {want} node threads exceeds the budget capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

/// A held reservation against a [`ThreadBudget`]; units return on drop.
#[derive(Debug)]
pub struct BudgetPermit<'a> {
    budget: &'a ThreadBudget,
    held: usize,
}

impl ThreadBudget {
    /// A budget of `capacity` node threads (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ThreadBudget {
            capacity,
            available: Mutex::new(capacity),
            freed: Condvar::new(),
        }
    }

    /// The total capacity the budget was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the currently unreserved units (for reporting; the
    /// value can be stale by the time the caller acts on it).
    pub fn available(&self) -> usize {
        *lock(&self.available)
    }

    /// Blocks until `want` node threads are available and reserves them.
    ///
    /// Zero-weight requests still hold one unit (a job always occupies
    /// at least its own thread), and oversized requests are clamped to
    /// the capacity so they run alone instead of deadlocking.
    pub fn acquire(&self, want: usize) -> BudgetPermit<'_> {
        let want = want.clamp(1, self.capacity);
        let mut available = lock(&self.available);
        while *available < want {
            available = self
                .freed
                .wait(available)
                .unwrap_or_else(|e| e.into_inner());
        }
        *available -= want;
        BudgetPermit {
            budget: self,
            held: want,
        }
    }

    /// Whether a request of `want` units could ever be admitted — the
    /// cheap pre-check admission control runs before queueing a job.
    pub fn admits(&self, want: usize) -> Result<(), BudgetError> {
        if want > self.capacity {
            return Err(BudgetError::ExceedsCapacity {
                want,
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// Non-blocking [`ThreadBudget::acquire`]: reserves `want` units if
    /// they are free *right now* (`Ok(Some(permit))`), reports a
    /// momentarily full budget as `Ok(None)` (back off and retry), and
    /// an impossible request — `want` beyond the whole capacity — as a
    /// typed error rather than clamping, blocking, or deadlocking.
    /// Zero-weight requests hold one unit, as in `acquire`.
    pub fn try_acquire(&self, want: usize) -> Result<Option<BudgetPermit<'_>>, BudgetError> {
        self.admits(want)?;
        let want = want.max(1);
        let mut available = lock(&self.available);
        if *available < want {
            return Ok(None);
        }
        *available -= want;
        Ok(Some(BudgetPermit {
            budget: self,
            held: want,
        }))
    }
}

impl Drop for BudgetPermit<'_> {
    fn drop(&mut self) {
        *lock(&self.budget.available) += self.held;
        self.budget.freed.notify_all();
    }
}

/// Runs every task of a grid, `jobs` at a time, under a global
/// node-thread budget of [`DEFAULT_NODE_BUDGET`].
///
/// * `weight(task)` is the number of simulated node threads the task
///   will spawn (its machine size `p`); admission waits until the budget
///   covers it.
/// * `run(task)` executes one grid point. Tasks are claimed in input
///   order; results are returned indexed exactly like `tasks`, so the
///   output (and anything printed from it afterwards) is independent of
///   `jobs` and of worker interleaving.
///
/// `jobs <= 1` (or a single task) degenerates to a plain serial loop on
/// the calling thread — the serial path stays exercised, and callers can
/// expose `--jobs 1` as the conservative default.
///
/// # Panics
///
/// A panicking task propagates out of `run_grid` after the remaining
/// workers drain (as the scope's generic "a scoped thread panicked").
pub fn run_grid<T, R, W, F>(tasks: &[T], jobs: usize, weight: W, run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    W: Fn(&T) -> usize + Sync,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(tasks.len().max(1));
    if jobs == 1 {
        return tasks.iter().map(run).collect();
    }

    let budget = ThreadBudget::new(DEFAULT_NODE_BUDGET);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks.len() {
                    break;
                }
                let permit = budget.acquire(weight(&tasks[i]));
                let result = run(&tasks[i]);
                drop(permit);
                *lock(&slots[i]) = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            #[allow(
                clippy::expect_used,
                reason = "a task that failed would have panicked the scope above; \
                          every surviving slot is filled"
            )]
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every grid slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_results_keep_input_order_at_any_job_count() {
        let tasks: Vec<usize> = (0..37).collect();
        let serial = run_grid(&tasks, 1, |_| 1, |&t| t * t);
        for jobs in [2, 4, 8] {
            let parallel = run_grid(&tasks, jobs, |_| 1, |&t| t * t);
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn zero_weight_jobs_still_hold_one_unit() {
        // A job always occupies at least its own thread: weight 0 must
        // not create a permit that reserves nothing (acquire) nor admit
        // unbounded concurrency (try_acquire).
        let budget = ThreadBudget::new(1);
        let held = budget.acquire(0);
        assert_eq!(budget.available(), 0);
        assert!(matches!(budget.try_acquire(0), Ok(None)));
        drop(held);
        assert_eq!(budget.available(), 1);
        let held = budget.try_acquire(0).expect("within capacity");
        assert!(held.is_some());
        assert_eq!(budget.available(), 0);
    }

    #[test]
    fn try_acquire_rejects_oversized_requests_as_an_error_not_a_deadlock() {
        let budget = ThreadBudget::new(4);
        // want > capacity can never succeed: a typed error, instantly —
        // no clamping (that's acquire's contract) and no blocking.
        assert_eq!(
            budget.try_acquire(5).unwrap_err(),
            BudgetError::ExceedsCapacity {
                want: 5,
                capacity: 4
            }
        );
        assert_eq!(
            budget.admits(1000).unwrap_err(),
            BudgetError::ExceedsCapacity {
                want: 1000,
                capacity: 4
            }
        );
        // The failed attempts reserved nothing.
        assert_eq!(budget.available(), 4);
        // Exactly at capacity is fine; a second full-size request backs
        // off with None instead of waiting.
        let all = budget.try_acquire(4).expect("at capacity");
        assert!(all.is_some());
        assert!(matches!(budget.try_acquire(4), Ok(None)));
        assert!(matches!(budget.try_acquire(1), Ok(None)));
        drop(all);
        assert_eq!(budget.available(), 4);
    }

    #[test]
    fn out_of_order_releases_keep_the_accounting_exact() {
        // Permits dropped in an order unrelated to acquisition must
        // return exactly their own units: after any release order the
        // full capacity is acquirable again.
        let budget = ThreadBudget::new(4);
        let a = budget.acquire(1);
        let b = budget.acquire(2);
        let c = budget.acquire(1);
        assert_eq!(budget.available(), 0);
        drop(b); // middle first
        assert_eq!(budget.available(), 2);
        drop(a);
        drop(c);
        assert_eq!(budget.available(), 4);
        let all = budget.acquire(4);
        drop(all);
    }

    #[test]
    fn concurrent_acquire_release_never_overshoots_the_budget() {
        // 16 threads of weight 2 against a budget of 4: at most 2 run
        // at once, every thread completes (releases wake all waiters),
        // and the budget drains back to exactly its capacity.
        let budget = ThreadBudget::new(4);
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    let permit = budget.acquire(2);
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    running.fetch_sub(1, Ordering::SeqCst);
                    drop(permit);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "budget overshoot");
        assert_eq!(budget.available(), 4);
    }

    #[test]
    fn budget_clamps_oversized_requests_instead_of_deadlocking() {
        let budget = ThreadBudget::new(4);
        // Twice the capacity still acquires (clamped), alone.
        let permit = budget.acquire(1000);
        drop(permit);
        let a = budget.acquire(3);
        // A second oversized request waits for the first to drop…
        drop(a);
        let b = budget.acquire(4);
        drop(b);
    }

    #[test]
    fn budget_serializes_heavy_tasks_but_work_completes() {
        // 8 tasks each weighing 3 against a budget of 4: at most one
        // runs at a time, but all finish.
        let done = AtomicUsize::new(0);
        let tasks: Vec<usize> = (0..8).collect();
        let out = run_grid(
            &tasks,
            4,
            |_| 3,
            |&t| {
                done.fetch_add(1, Ordering::Relaxed);
                t
            },
        );
        assert_eq!(out, tasks);
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn panicking_task_propagates() {
        let tasks = [0usize, 1, 2];
        let _ = run_grid(
            &tasks,
            2,
            |_| 1,
            |&t| {
                if t == 1 {
                    panic!("grid task panicked");
                }
                t
            },
        );
    }
}
