//! Harness utilities shared by the workspace-level examples
//! (`examples/*.rs` at the repository root), the cross-crate integration
//! tests (`tests/*.rs`), and the CLI's experiment drivers.
//!
//! The main export is [`run_grid`]: a parallel driver for sweeps over
//! independent simulated-machine runs. Each grid point spawns its own
//! `p`-node machine, so the driver throttles admission with a global
//! *node-thread budget* rather than a plain job count — four concurrent
//! 512-node runs are a very different load from four 8-node runs.
//!
//! Determinism: each run's virtual-time results depend only on its own
//! configuration (see the `cubemm-simnet` crate docs), and [`run_grid`]
//! returns results indexed exactly like its input slice, so a grid's
//! output is bitwise identical at any `jobs` value — property-tested by
//! the workspace determinism suite.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

pub mod recovery;

/// Default cap on simulated node threads alive at once across a grid
/// ([`run_grid`]). Big enough that any single run (the largest machine
/// in the evaluation is 512 nodes) always fits; small enough that a
/// parallel sweep cannot pile thousands of OS threads onto the host.
pub const DEFAULT_NODE_BUDGET: usize = 1024;

/// Locks ignoring poisoning: budget and result state stay consistent
/// under every partial update, and a panicking grid task must not
/// deadlock its siblings.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A counting budget of simulated node threads, shared by every worker
/// of a [`run_grid`] call.
///
/// `acquire(p)` blocks until `p` units are free and returns a permit
/// that releases them on drop. Requests are clamped to the capacity, so
/// a run bigger than the whole budget still executes (alone) instead of
/// deadlocking.
pub struct ThreadBudget {
    capacity: usize,
    available: Mutex<usize>,
    freed: Condvar,
}

/// A held reservation against a [`ThreadBudget`]; units return on drop.
pub struct BudgetPermit<'a> {
    budget: &'a ThreadBudget,
    held: usize,
}

impl ThreadBudget {
    /// A budget of `capacity` node threads (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ThreadBudget {
            capacity,
            available: Mutex::new(capacity),
            freed: Condvar::new(),
        }
    }

    /// Blocks until `want` node threads are available and reserves them.
    pub fn acquire(&self, want: usize) -> BudgetPermit<'_> {
        let want = want.clamp(1, self.capacity);
        let mut available = lock(&self.available);
        while *available < want {
            available = self
                .freed
                .wait(available)
                .unwrap_or_else(|e| e.into_inner());
        }
        *available -= want;
        BudgetPermit {
            budget: self,
            held: want,
        }
    }
}

impl Drop for BudgetPermit<'_> {
    fn drop(&mut self) {
        *lock(&self.budget.available) += self.held;
        self.budget.freed.notify_all();
    }
}

/// Runs every task of a grid, `jobs` at a time, under a global
/// node-thread budget of [`DEFAULT_NODE_BUDGET`].
///
/// * `weight(task)` is the number of simulated node threads the task
///   will spawn (its machine size `p`); admission waits until the budget
///   covers it.
/// * `run(task)` executes one grid point. Tasks are claimed in input
///   order; results are returned indexed exactly like `tasks`, so the
///   output (and anything printed from it afterwards) is independent of
///   `jobs` and of worker interleaving.
///
/// `jobs <= 1` (or a single task) degenerates to a plain serial loop on
/// the calling thread — the serial path stays exercised, and callers can
/// expose `--jobs 1` as the conservative default.
///
/// # Panics
///
/// A panicking task propagates out of `run_grid` after the remaining
/// workers drain (as the scope's generic "a scoped thread panicked").
pub fn run_grid<T, R, W, F>(tasks: &[T], jobs: usize, weight: W, run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    W: Fn(&T) -> usize + Sync,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(tasks.len().max(1));
    if jobs == 1 {
        return tasks.iter().map(run).collect();
    }

    let budget = ThreadBudget::new(DEFAULT_NODE_BUDGET);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks.len() {
                    break;
                }
                let permit = budget.acquire(weight(&tasks[i]));
                let result = run(&tasks[i]);
                drop(permit);
                *lock(&slots[i]) = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            #[allow(
                clippy::expect_used,
                reason = "a task that failed would have panicked the scope above; \
                          every surviving slot is filled"
            )]
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every grid slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_results_keep_input_order_at_any_job_count() {
        let tasks: Vec<usize> = (0..37).collect();
        let serial = run_grid(&tasks, 1, |_| 1, |&t| t * t);
        for jobs in [2, 4, 8] {
            let parallel = run_grid(&tasks, jobs, |_| 1, |&t| t * t);
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn budget_clamps_oversized_requests_instead_of_deadlocking() {
        let budget = ThreadBudget::new(4);
        // Twice the capacity still acquires (clamped), alone.
        let permit = budget.acquire(1000);
        drop(permit);
        let a = budget.acquire(3);
        // A second oversized request waits for the first to drop…
        drop(a);
        let b = budget.acquire(4);
        drop(b);
    }

    #[test]
    fn budget_serializes_heavy_tasks_but_work_completes() {
        // 8 tasks each weighing 3 against a budget of 4: at most one
        // runs at a time, but all finish.
        let done = AtomicUsize::new(0);
        let tasks: Vec<usize> = (0..8).collect();
        let out = run_grid(
            &tasks,
            4,
            |_| 3,
            |&t| {
                done.fetch_add(1, Ordering::Relaxed);
                t
            },
        );
        assert_eq!(out, tasks);
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn panicking_task_propagates() {
        let tasks = [0usize, 1, 2];
        let _ = run_grid(
            &tasks,
            2,
            |_| 1,
            |&t| {
                if t == 1 {
                    panic!("grid task panicked");
                }
                t
            },
        );
    }
}
