//! Glue crate: hosts the workspace-level runnable examples
//! (`examples/*.rs` at the repository root) and the cross-crate
//! integration tests (`tests/*.rs` at the repository root). See those
//! directories; this library itself is intentionally empty.
