//! Shared reporting helpers for the table/figure regeneration binaries.
//!
//! Each binary prints a human-readable table to stdout and, when the
//! `CUBEMM_RESULTS_DIR` environment variable is set (default
//! `results/` relative to the working directory), writes the same rows
//! as CSV for diffing against the paper.

pub mod microbench;

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Measures an algorithm's effective `(a, b)` overhead by running the
/// simulator twice: once with `t_s = 1, t_w = 0` (elapsed = start-ups on
/// the critical path) and once with `t_s = 0, t_w = 1` (elapsed = words
/// on the critical path).
pub fn measure_ab(
    algo: cubemm_core::Algorithm,
    n: usize,
    p: usize,
    port: cubemm_simnet::PortModel,
) -> Result<(f64, f64), cubemm_core::AlgoError> {
    use cubemm_core::MachineConfig;
    use cubemm_dense::Matrix;
    use cubemm_simnet::CostParams;

    let a = Matrix::random(n, n, 1234);
    let b = Matrix::random(n, n, 5678);
    let cfg_a = MachineConfig::new(port, CostParams::STARTUPS_ONLY);
    let cfg_b = MachineConfig::new(port, CostParams::WORDS_ONLY);
    let ra = algo.multiply(&a, &b, p, &cfg_a)?;
    let rb = algo.multiply(&a, &b, p, &cfg_b)?;
    Ok((ra.stats.elapsed, rb.stats.elapsed))
}

/// Directory results are written to.
pub fn results_dir() -> PathBuf {
    std::env::var_os("CUBEMM_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Writes `contents` to `<results_dir>/<name>`, creating the directory.
pub fn write_result(name: &str, contents: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let mut f = fs::File::create(&path)?;
    f.write_all(contents.as_bytes())?;
    Ok(path)
}

/// A minimal fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncols {
                line.push_str(&format!("{:<width$}  ", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float compactly for table cells.
pub fn fmt(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e12 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["x", "yy"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("x    yy"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.to_csv(), "x,yy\n1,2\n333,4\n");
    }

    #[test]
    fn fmt_integers_and_floats() {
        assert_eq!(fmt(4.0), "4");
        assert_eq!(fmt(4.25), "4.25");
    }

    #[test]
    fn measure_ab_recovers_table2_for_cannon() {
        let (a, b) = measure_ab(
            cubemm_core::Algorithm::Cannon,
            16,
            16,
            cubemm_simnet::PortModel::OnePort,
        )
        .unwrap();
        assert_eq!(a, 10.0); // 2(√p−1) + log p
        assert_eq!(b, 160.0); // n²/√p (2 − 2/√p + log p/√p)
    }
}
