//! A minimal, dependency-free micro-benchmark harness.
//!
//! The workspace is deliberately free of external crates (DESIGN.md), so
//! the `[[bench]]` targets use this drop-in subset of the Criterion API
//! instead of Criterion itself: groups, `BenchmarkId`, `bench_with_input`,
//! `iter`, and `black_box`. Each benchmark runs a short warm-up followed
//! by `sample_size` timed samples and prints the per-iteration mean and
//! minimum — enough to track the simulator's host-time overhead without a
//! statistics stack.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds the `function/parameter` identifier.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// A group of benchmarks sharing a name and sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark, threading `input` through to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Runs one benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Collects timed samples of one closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f` over the group's sample count (plus one warm-up call).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("bench {group}/{id}: no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "bench {group}/{id}: mean {mean:?}, min {min:?} over {} samples",
            self.samples.len()
        );
    }
}

/// Collects benchmark functions into one runner, mirroring Criterion's
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::microbench::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point mirroring Criterion's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &2usize, |b, &two| {
            b.iter(|| calls += two)
        });
        group.finish();
        // One warm-up + three samples, each adding 2.
        assert_eq!(calls, 8);
    }
}
