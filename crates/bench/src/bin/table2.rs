//! Regenerates **Table 2**: per-algorithm communication overheads
//! `(a, b)` (time `t_s·a + t_w·b`), comparing the paper's closed forms
//! with overheads *measured* from end-to-end simulated runs.
//!
//! Measurement technique: the simulator is run twice per configuration,
//! once with `(t_s, t_w) = (1, 0)` and once with `(0, 1)`; the elapsed
//! virtual times are exactly the effective `a` and `b` of the critical
//! path.
//!
//! Usage: `cargo run --release -p cubemm-bench --bin table2 [-- --large]`

use cubemm_bench::{fmt, measure_ab, write_result, Table};
use cubemm_core::Algorithm;
use cubemm_model::{costs, ModelAlgo, PortModel};

fn model_of(algo: Algorithm) -> Option<ModelAlgo> {
    Some(match algo {
        Algorithm::Simple => ModelAlgo::Simple,
        Algorithm::Cannon => ModelAlgo::Cannon,
        Algorithm::Hje => ModelAlgo::Hje,
        Algorithm::Berntsen => ModelAlgo::Berntsen,
        Algorithm::Dns => ModelAlgo::Dns,
        Algorithm::Diag3d => ModelAlgo::Diag3d,
        Algorithm::All3d => ModelAlgo::All3d,
        _ => return None,
    })
}

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    // (n, p) pairs: p must be a 6th power of two to exercise both 2-D
    // and 3-D algorithms at the same size; 64 covers the default run,
    // 4096 the --large run.
    let configs: &[(usize, usize)] = if large {
        &[(64, 64), (128, 64), (256, 64), (512, 4096)]
    } else {
        &[(32, 64), (64, 64), (128, 64)]
    };

    println!("=== Table 2: communication overheads (a, b); time = ts*a + tw*b ===");
    println!("measured via (ts,tw)=(1,0) and (0,1) simulator runs\n");

    let mut table = Table::new(&[
        "algorithm",
        "port",
        "n",
        "p",
        "a measured",
        "a paper",
        "b measured",
        "b paper",
    ]);
    for &(n, p) in configs {
        for algo in Algorithm::ALL {
            for port in [PortModel::OnePort, PortModel::MultiPort] {
                if algo.check(n, p).is_err() {
                    continue;
                }
                let Ok((ma, mb)) = measure_ab(algo, n, p, port) else {
                    continue;
                };
                let paper = model_of(algo).and_then(|m| costs::overhead(m, port, n, p));
                let (pa, pb) = paper.map_or(("-".into(), "-".into()), |o| (fmt(o.a), fmt(o.b)));
                table.row(vec![
                    algo.name().to_string(),
                    port.to_string(),
                    n.to_string(),
                    p.to_string(),
                    fmt(ma),
                    pa,
                    fmt(mb),
                    pb,
                ]);
            }
        }
    }
    println!("{}", table.render());
    println!(
        "notes: '-' = no Table 2 entry (HJE one-port; the 2-D Diagonal and 3-D\n\
         All_Trans stepping stones). Measured values can undercut the paper's\n\
         figures where phases overlap across different nodes (3DD one-port; see\n\
         EXPERIMENTS.md E2)."
    );
    if let Ok(path) = write_result("table2.csv", &table.to_csv()) {
        println!("csv written to {}", path.display());
    }
}
