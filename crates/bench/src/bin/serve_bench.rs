//! Load generator for the `cubemm-serve` machine pool.
//!
//! Drives thousands of concurrent multiply requests straight into a
//! live [`ServePool`] (no process or socket in the way — this measures
//! the pool, not the pipe) and reports sustained throughput and
//! wall-clock latency quantiles per concurrency level, plus the typed
//! backpressure counts that prove overload is answered honestly rather
//! than buffered. Writes `BENCH_serve.json` in the working directory,
//! mirroring the other `BENCH_*.json` formats.
//!
//! ```text
//! cargo run --release -p cubemm-bench --bin serve_bench              # full run
//! cargo run --release -p cubemm-bench --bin serve_bench -- --smoke   # CI smoke
//! cargo run --release -p cubemm-bench --bin serve_bench -- --soak    # CI chaos
//! cargo run --release -p cubemm-bench --bin serve_bench -- \
//!     --baseline OLD.json                                            # + speedups
//! ```
//!
//! `--smoke` runs one small level and writes nothing. `--soak` runs the
//! chaos mix (crashes + corruption under load) and prints a Markdown
//! error-budget table — the piece CI appends to its step summary.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cubemm_serve::{parse_request, JobStatus, Responder, ServeConfig, ServePool};

/// One load level: `concurrency` requests submitted as fast as the
/// generator can go against a bounded queue of the same depth class.
#[derive(Clone, Copy)]
struct Level {
    concurrency: usize,
    queue_cap: usize,
    workers: usize,
}

/// The job mix: small fault-free ABFT multiplications (the service's
/// bread and butter), shapes cycling so the pool sees heterogeneous
/// machine sizes.
fn job_line(i: usize, faulty: bool) -> String {
    let n = [8usize, 12, 16][i % 3];
    let p = if i % 7 == 0 { 16 } else { 4 };
    let faults = if faulty && i % 3 == 0 {
        format!(
            r#","faults":{{"crashes":[{{"node":{},"step":{}}}]}}"#,
            i % p,
            i % 2
        )
    } else if faulty && i % 5 == 0 {
        format!(
            r#","faults":{{"corruptions":[{{"from":0,"to":1,"seq":{},"word":{},"perturb":64.0}}]}}"#,
            i % 3,
            i % 8
        )
    } else {
        String::new()
    };
    format!(
        r#"{{"id":"bench-{i}","n":{n},"p":{p},"algo":"cannon","seed":{},"priority":{}{faults}}}"#,
        i % 11,
        i % 10
    )
}

#[derive(Default)]
struct LevelOutcome {
    ok: u64,
    failed: u64,
    overloaded: u64,
    quarantines: u64,
    reboots: u64,
    jobs_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Submits `level.concurrency` jobs against a fresh pool and measures
/// submit→response wall latency per job plus drained totals.
fn run_level(level: Level, faulty: bool) -> LevelOutcome {
    let pool = ServePool::start(ServeConfig {
        workers: level.workers,
        queue_cap: level.queue_cap,
        ..ServeConfig::default()
    });
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let overloaded = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    for i in 0..level.concurrency {
        let req = parse_request(&job_line(i, faulty)).expect("generator line");
        let submit_time = Instant::now();
        let latencies = Arc::clone(&latencies);
        let overloaded = Arc::clone(&overloaded);
        let responder: Responder = Arc::new(move |resp| {
            if matches!(resp.status, JobStatus::Overloaded { .. }) {
                overloaded.fetch_add(1, Ordering::Relaxed);
            }
            let ms = submit_time.elapsed().as_secs_f64() * 1e3;
            latencies.lock().unwrap_or_else(|e| e.into_inner()).push(ms);
        });
        pool.submit(req, responder);
    }
    let stats = pool.drain();
    let wall = started.elapsed().as_secs_f64();
    let mut lat = latencies.lock().unwrap_or_else(|e| e.into_inner()).clone();
    lat.sort_by(f64::total_cmp);
    let quantile = |q: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let idx = ((lat.len() - 1) as f64 * q).round() as usize;
        lat[idx]
    };
    let executed = stats.ok + stats.failed + stats.deadline_missed;
    assert_eq!(
        stats.responses(),
        level.concurrency as u64,
        "load generator dropped a response"
    );
    LevelOutcome {
        ok: stats.ok,
        failed: stats.failed,
        overloaded: stats.overloaded + stats.shed,
        quarantines: stats.quarantines,
        reboots: stats.reboots,
        jobs_per_sec: executed as f64 / wall,
        p50_ms: quantile(0.50),
        p99_ms: quantile(0.99),
    }
}

/// Pulls `(concurrency) -> jobs_per_sec` rows out of a previously
/// written `BENCH_serve.json` (line scanner; no JSON stack needed).
fn parse_baseline(text: &str) -> Vec<(usize, f64)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let get = |key: &str| -> Option<&str> {
            let at = line.find(&format!("\"{key}\":"))? + key.len() + 3;
            let rest = line[at..].trim_start();
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim())
        };
        if let (Some(c), Some(jps)) = (get("concurrency"), get("jobs_per_sec")) {
            if let (Ok(c), Ok(jps)) = (c.parse(), jps.parse()) {
                rows.push((c, jps));
            }
        }
    }
    rows
}

/// The chaos soak for CI: sustained faulty load, Markdown error-budget
/// table on stdout (appended to the step summary).
fn run_soak() {
    let level = Level {
        concurrency: 1500,
        queue_cap: 1500,
        workers: 4,
    };
    let started = Instant::now();
    let out = run_level(level, true);
    let wall = started.elapsed().as_secs_f64();
    println!(
        "### serve chaos soak ({} jobs, {wall:.1}s wall)",
        level.concurrency
    );
    println!();
    println!("| metric | value | budget | status |");
    println!("|---|---|---|---|");
    let answered = out.ok + out.failed + out.overloaded;
    let mut bad = false;
    let mut row = |metric: &str, value: String, budget: &str, ok: bool| {
        println!(
            "| {metric} | {value} | {budget} | {} |",
            if ok { "✅" } else { "❌" }
        );
        bad |= !ok;
    };
    row(
        "responses",
        format!("{answered}/{}", level.concurrency),
        "every job answered",
        answered == level.concurrency as u64,
    );
    row(
        "verified ok",
        format!("{}", out.ok),
        ">= 90% of jobs",
        out.ok * 10 >= level.concurrency as u64 * 9,
    );
    row(
        "typed failures",
        format!("{}", out.failed),
        "typed only (no panics: run completed)",
        true,
    );
    row(
        "quarantines healed",
        format!("{}/{}", out.reboots, out.quarantines),
        "every quarantine reboots",
        out.reboots == out.quarantines && out.quarantines > 0,
    );
    row(
        "throughput",
        format!("{:.0} jobs/s", out.jobs_per_sec),
        "> 100 jobs/s",
        out.jobs_per_sec > 100.0,
    );
    row(
        "p99 latency",
        format!("{:.0} ms", out.p99_ms),
        "informational",
        true,
    );
    if bad {
        eprintln!("error: soak exceeded its error budget");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--soak") {
        run_soak();
        return;
    }
    let baseline: Vec<(usize, f64)> = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .map(|path| match std::fs::read_to_string(path) {
            Ok(text) => parse_baseline(&text),
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        })
        .unwrap_or_default();

    // Three levels; the top one intentionally overruns its queue so the
    // overload column exercises (and documents) typed backpressure.
    let levels: Vec<Level> = if smoke {
        vec![Level {
            concurrency: 64,
            queue_cap: 64,
            workers: 2,
        }]
    } else {
        vec![
            Level {
                concurrency: 128,
                queue_cap: 128,
                workers: 4,
            },
            Level {
                concurrency: 512,
                queue_cap: 512,
                workers: 4,
            },
            Level {
                concurrency: 2048,
                queue_cap: 1024,
                workers: 4,
            },
        ]
    };

    let mut rows: Vec<String> = Vec::new();
    println!(
        "{:<12} {:>8} {:>8} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "concurrency", "ok", "failed", "overloaded", "jobs/sec", "p50 ms", "p99 ms", "vs base"
    );
    for &level in &levels {
        let out = run_level(level, false);
        let base = baseline
            .iter()
            .find(|(c, _)| *c == level.concurrency)
            .map(|&(_, jps)| jps);
        let speedup = base.map_or(0.0, |b| out.jobs_per_sec / b);
        println!(
            "{:<12} {:>8} {:>8} {:>10} {:>12.0} {:>10.2} {:>10.2} {:>10}",
            level.concurrency,
            out.ok,
            out.failed,
            out.overloaded,
            out.jobs_per_sec,
            out.p50_ms,
            out.p99_ms,
            base.map_or_else(|| "-".to_string(), |_| format!("{speedup:.2}x")),
        );
        rows.push(format!(
            "    {{\"concurrency\": {}, \"queue_cap\": {}, \"workers\": {}, \"ok\": {}, \
             \"failed\": {}, \"overloaded\": {}, \"jobs_per_sec\": {:.1}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"speedup_vs_baseline\": {:.3}}}",
            level.concurrency,
            level.queue_cap,
            level.workers,
            out.ok,
            out.failed,
            out.overloaded,
            out.jobs_per_sec,
            out.p50_ms,
            out.p99_ms,
            speedup
        ));
    }

    if !smoke {
        let json = format!(
            "{{\n  \"bench\": \"serve_pool\",\n  \"baseline\": \
             \"4-worker pool, bounded queue, ABFT jobs (PR 6)\",\n  \"results\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
        println!("wrote BENCH_serve.json");
    }
}
