//! Simulation-engine throughput: the checked-in engine perf trajectory.
//!
//! Measures host-time cost of the simnet execution core itself — machine
//! spin-up, neighbor ping-pong latency, and a full recursive-doubling
//! all-gather — and writes the results as `BENCH_simnet.json` in the
//! working directory, mirroring the `BENCH_kernels.json` format.
//!
//! ```text
//! cargo run --release -p cubemm-bench --bin simnet_bench              # full run
//! cargo run --release -p cubemm-bench --bin simnet_bench -- --smoke   # CI smoke
//! cargo run --release -p cubemm-bench --bin simnet_bench -- \
//!     --baseline OLD.json                                             # + speedups
//! ```
//!
//! `--smoke` runs the small sizes only and cross-checks every case's
//! virtual-time result against its closed form, exiting non-zero on
//! mismatch — a cheap guard that keeps the engine and bench code from
//! bit-rotting. The full run performs the same verification before
//! timing anything. `--baseline FILE` reads a previously written
//! `BENCH_simnet.json` and emits a `speedup_vs_baseline` column, the
//! before/after evidence for engine changes.

use std::time::Instant;

use cubemm_collectives::allgather;
use cubemm_simnet::{run_machine, CostParams, PortModel};
use cubemm_topology::Subcube;

const COST: CostParams = CostParams { ts: 10.0, tw: 2.0 };

/// Ping-pong rounds per run: enough that per-message cost dominates the
/// two-node spin-up.
const PINGPONG_ROUNDS: usize = 512;

/// Words per all-gather contribution.
const ALLGATHER_WORDS: usize = 64;

#[derive(Clone, Copy)]
struct Case {
    name: &'static str,
    p: usize,
}

/// One `p`-node machine spin-up and tear-down with no communication.
fn spinup(p: usize) -> f64 {
    let out = run_machine(p, PortModel::OnePort, COST, vec![(); p], |proc, ()| {
        proc.id()
    });
    assert_eq!(out.outputs.len(), p);
    out.stats.elapsed
}

/// Two nodes volleying a 4-word message `PINGPONG_ROUNDS` times.
fn pingpong() -> f64 {
    let out = run_machine(2, PortModel::OnePort, COST, vec![(); 2], |proc, ()| {
        let msg = vec![proc.id() as f64; 4];
        for r in 0..PINGPONG_ROUNDS as u64 {
            if proc.id() == 0 {
                proc.send(1, r, msg.clone());
                let _ = proc.recv(1, r);
            } else {
                let got = proc.recv(0, r);
                proc.send(0, r, got);
            }
        }
        proc.clock()
    });
    out.stats.elapsed
}

/// Full-cube recursive-doubling all-gather of `ALLGATHER_WORDS`-word
/// contributions.
fn allgather_run(p: usize) -> f64 {
    let dim = p.trailing_zeros();
    let out = run_machine(p, PortModel::OnePort, COST, vec![(); p], move |proc, ()| {
        let sc = Subcube::whole(dim);
        let mine: Vec<f64> = vec![proc.id() as f64; ALLGATHER_WORDS];
        let got = allgather(proc, &sc, 0, mine.into());
        assert_eq!(got.len(), p);
        got[p - 1].len()
    });
    out.stats.elapsed
}

fn run_case(case: Case) -> f64 {
    match case.name {
        "spinup" => spinup(case.p),
        "pingpong" => pingpong(),
        "allgather" => allgather_run(case.p),
        other => unreachable!("unknown case {other}"),
    }
}

/// Verifies each case's virtual time against its closed form — the
/// engine must get faster without changing a single simulated number.
fn verify(case: Case) -> Result<(), String> {
    let elapsed = run_case(case);
    let want = match case.name {
        "spinup" => 0.0,
        // Each volley is two serialized 4-word hops.
        "pingpong" => PINGPONG_ROUNDS as f64 * 2.0 * (COST.ts + COST.tw * 4.0),
        // Table 1, one-port: ts·log p + tw·(p−1)·M.
        "allgather" => {
            COST.ts * f64::from(case.p.trailing_zeros())
                + COST.tw * ((case.p - 1) * ALLGATHER_WORDS) as f64
        }
        other => unreachable!("unknown case {other}"),
    };
    if elapsed != want {
        return Err(format!(
            "{}/p={}: virtual time {elapsed} != closed form {want}",
            case.name, case.p
        ));
    }
    Ok(())
}

/// Median-of-`reps` wall seconds for one execution of `case`.
fn time_case(case: Case, reps: usize) -> f64 {
    let _ = run_case(case); // warm-up
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(run_case(case));
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Pulls `(case, p) -> seconds` rows back out of a previously written
/// `BENCH_simnet.json` (the format this binary emits; no JSON stack in
/// the workspace, so this is a line scanner keyed on the known shape).
fn parse_baseline(text: &str) -> Vec<(String, usize, f64)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let get = |key: &str| -> Option<&str> {
            let at = line.find(&format!("\"{key}\":"))? + key.len() + 3;
            let rest = line[at..].trim_start();
            let rest = rest.strip_prefix('"').unwrap_or(rest);
            let end = rest.find([',', '"', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim())
        };
        if let (Some(case), Some(p), Some(secs)) = (get("case"), get("p"), get("seconds")) {
            if let (Ok(p), Ok(secs)) = (p.parse(), secs.parse()) {
                rows.push((case.to_string(), p, secs));
            }
        }
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline: Vec<(String, usize, f64)> = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .map(|path| match std::fs::read_to_string(path) {
            Ok(text) => parse_baseline(&text),
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        })
        .unwrap_or_default();

    let cases: Vec<Case> = if smoke {
        vec![
            Case {
                name: "spinup",
                p: 8,
            },
            Case {
                name: "pingpong",
                p: 2,
            },
            Case {
                name: "allgather",
                p: 8,
            },
        ]
    } else {
        vec![
            Case {
                name: "spinup",
                p: 8,
            },
            Case {
                name: "spinup",
                p: 64,
            },
            Case {
                name: "spinup",
                p: 256,
            },
            Case {
                name: "pingpong",
                p: 2,
            },
            Case {
                name: "allgather",
                p: 8,
            },
            Case {
                name: "allgather",
                p: 64,
            },
            Case {
                name: "allgather",
                p: 256,
            },
        ]
    };

    // Correctness first: a fast engine that simulates wrong times is
    // worse than a slow one.
    for &case in &cases {
        if let Err(e) = verify(case) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    println!("all engine cases verified against closed-form virtual times");

    let reps = if smoke { 3 } else { 9 };
    let mut rows: Vec<String> = Vec::new();
    println!(
        "{:<12} {:>6} {:>12} {:>10}",
        "case", "p", "seconds", "vs base"
    );
    for &case in &cases {
        let secs = time_case(case, reps);
        let base = baseline
            .iter()
            .find(|(n, p, _)| n == case.name && *p == case.p)
            .map(|&(_, _, s)| s);
        let speedup = base.map_or(0.0, |b| b / secs);
        println!(
            "{:<12} {:>6} {:>12.6} {:>10}",
            case.name,
            case.p,
            secs,
            base.map_or_else(|| "-".to_string(), |_| format!("{speedup:.2}x")),
        );
        rows.push(format!(
            "    {{\"case\": \"{}\", \"p\": {}, \"seconds\": {:.6}, \"speedup_vs_baseline\": {:.3}}}",
            case.name, case.p, secs, speedup
        ));
    }

    if !smoke {
        let json = format!(
            "{{\n  \"bench\": \"simnet_engine\",\n  \"baseline\": \
             \"thread-per-node engine with mpsc mailboxes (PR 3)\",\n  \"results\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        std::fs::write("BENCH_simnet.json", &json).expect("write BENCH_simnet.json");
        println!("wrote BENCH_simnet.json");
    }
}
