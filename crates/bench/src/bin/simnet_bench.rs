//! Simulation-engine throughput: the checked-in engine perf trajectory.
//!
//! Measures host-time cost of the simnet execution core itself — machine
//! spin-up, neighbor ping-pong latency, and a full recursive-doubling
//! all-gather — under both execution engines (thread-per-node and
//! event-driven), and writes the results as `BENCH_simnet.json` in the
//! working directory, mirroring the `BENCH_kernels.json` format.
//!
//! ```text
//! cargo run --release -p cubemm-bench --bin simnet_bench              # full run
//! cargo run --release -p cubemm-bench --bin simnet_bench -- --smoke   # CI smoke
//! cargo run --release -p cubemm-bench --bin simnet_bench -- \
//!     --baseline OLD.json                                             # + speedups
//! ```
//!
//! `--smoke` runs the small sizes only — including one event-engine case
//! — and cross-checks every case's virtual-time result against its
//! closed form, exiting non-zero on mismatch — a cheap guard that keeps
//! the engines and bench code from bit-rotting. The closed forms are
//! engine-independent (the two engines are bitwise equivalent), so the
//! same verification covers both. The full run performs the same
//! verification before timing anything, and includes spin-up points at
//! p = 4096 and p = 65536 that only the event engine can host. A
//! `--baseline FILE` reads a previously written `BENCH_simnet.json` and
//! emits a `speedup_vs_baseline` column, the before/after evidence for
//! engine changes (rows from pre-engine-column baselines count as
//! threaded).

use std::time::Instant;

use cubemm_collectives::allgather;
use cubemm_simnet::{CostParams, Engine, Machine, Proc, RunOutcome};
use cubemm_topology::Subcube;

const COST: CostParams = CostParams { ts: 10.0, tw: 2.0 };

/// Ping-pong rounds per run: enough that per-message cost dominates the
/// two-node spin-up.
const PINGPONG_ROUNDS: usize = 512;

/// Words per all-gather contribution.
const ALLGATHER_WORDS: usize = 64;

#[derive(Clone, Copy)]
struct Case {
    name: &'static str,
    p: usize,
    engine: Engine,
}

/// Boots a healthy one-port machine under `engine` and runs `program`.
fn run<O, F, Fut>(p: usize, engine: Engine, program: F) -> RunOutcome<O>
where
    O: Send,
    F: Fn(Proc, ()) -> Fut + Sync,
    Fut: std::future::Future<Output = O>,
{
    #[allow(
        clippy::expect_used,
        reason = "bench machine shapes are fixed and valid; failure is a bench bug"
    )]
    Machine::builder(p)
        .cost(COST)
        .engine(engine)
        .build()
        .expect("valid bench machine")
        .run(vec![(); p], program)
        .expect("healthy bench run")
}

/// One `p`-node machine spin-up and tear-down with no communication.
fn spinup(p: usize, engine: Engine) -> f64 {
    let out = run(p, engine, |proc, ()| async move { proc.id() });
    assert_eq!(out.outputs.len(), p);
    out.stats.elapsed
}

/// Two nodes volleying a 4-word message `PINGPONG_ROUNDS` times.
fn pingpong(engine: Engine) -> f64 {
    let out = run(2, engine, |mut proc, ()| async move {
        let msg = vec![proc.id() as f64; 4];
        for r in 0..PINGPONG_ROUNDS as u64 {
            if proc.id() == 0 {
                proc.send(1, r, msg.clone());
                let _ = proc.recv(1, r).await;
            } else {
                let got = proc.recv(0, r).await;
                proc.send(0, r, got);
            }
        }
        proc.clock()
    });
    out.stats.elapsed
}

/// Full-cube recursive-doubling all-gather of `ALLGATHER_WORDS`-word
/// contributions.
fn allgather_run(p: usize, engine: Engine) -> f64 {
    let dim = p.trailing_zeros();
    let out = run(p, engine, move |mut proc, ()| async move {
        let sc = Subcube::whole(dim);
        let mine: Vec<f64> = vec![proc.id() as f64; ALLGATHER_WORDS];
        let got = allgather(&mut proc, &sc, 0, mine.into()).await;
        assert_eq!(got.len(), p);
        got[p - 1].len()
    });
    out.stats.elapsed
}

fn run_case(case: Case) -> f64 {
    match case.name {
        "spinup" => spinup(case.p, case.engine),
        "pingpong" => pingpong(case.engine),
        "allgather" => allgather_run(case.p, case.engine),
        other => unreachable!("unknown case {other}"),
    }
}

/// Verifies each case's virtual time against its closed form — the
/// engine must get faster without changing a single simulated number.
/// The closed forms don't mention the engine: threaded and event runs
/// are bitwise equivalent.
fn verify(case: Case) -> Result<(), String> {
    let elapsed = run_case(case);
    let want = match case.name {
        "spinup" => 0.0,
        // Each volley is two serialized 4-word hops.
        "pingpong" => PINGPONG_ROUNDS as f64 * 2.0 * (COST.ts + COST.tw * 4.0),
        // Table 1, one-port: ts·log p + tw·(p−1)·M.
        "allgather" => {
            COST.ts * f64::from(case.p.trailing_zeros())
                + COST.tw * ((case.p - 1) * ALLGATHER_WORDS) as f64
        }
        other => unreachable!("unknown case {other}"),
    };
    if elapsed != want {
        return Err(format!(
            "{}/p={}/{}: virtual time {elapsed} != closed form {want}",
            case.name, case.p, case.engine
        ));
    }
    Ok(())
}

/// Median-of-`reps` wall seconds for one execution of `case`.
fn time_case(case: Case, reps: usize) -> f64 {
    let _ = run_case(case); // warm-up
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(run_case(case));
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Pulls `(case, p, engine) -> seconds` rows back out of a previously
/// written `BENCH_simnet.json` (the format this binary emits; no JSON
/// stack in the workspace, so this is a line scanner keyed on the known
/// shape). Rows without an `engine` field — written before the event
/// engine existed — count as threaded.
fn parse_baseline(text: &str) -> Vec<(String, usize, String, f64)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let get = |key: &str| -> Option<&str> {
            let at = line.find(&format!("\"{key}\":"))? + key.len() + 3;
            let rest = line[at..].trim_start();
            let rest = rest.strip_prefix('"').unwrap_or(rest);
            let end = rest.find([',', '"', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim())
        };
        if let (Some(case), Some(p), Some(secs)) = (get("case"), get("p"), get("seconds")) {
            let engine = get("engine").unwrap_or("threaded").to_string();
            if let (Ok(p), Ok(secs)) = (p.parse(), secs.parse()) {
                rows.push((case.to_string(), p, engine, secs));
            }
        }
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline: Vec<(String, usize, String, f64)> = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .map(|path| match std::fs::read_to_string(path) {
            Ok(text) => parse_baseline(&text),
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        })
        .unwrap_or_default();

    let case = |name: &'static str, p: usize, engine: Engine| Case { name, p, engine };
    let cases: Vec<Case> = if smoke {
        vec![
            case("spinup", 8, Engine::Threaded),
            case("pingpong", 2, Engine::Threaded),
            case("allgather", 8, Engine::Threaded),
            // The event engine's smoke coverage: same closed forms, one
            // host thread, plus a spin-up far past any thread budget.
            case("allgather", 8, Engine::Event),
            case("spinup", 4096, Engine::Event),
        ]
    } else {
        vec![
            case("spinup", 8, Engine::Threaded),
            case("spinup", 64, Engine::Threaded),
            case("spinup", 256, Engine::Threaded),
            case("pingpong", 2, Engine::Threaded),
            case("allgather", 8, Engine::Threaded),
            case("allgather", 64, Engine::Threaded),
            case("allgather", 256, Engine::Threaded),
            case("spinup", 256, Engine::Event),
            case("pingpong", 2, Engine::Event),
            case("allgather", 8, Engine::Event),
            case("allgather", 64, Engine::Event),
            case("allgather", 256, Engine::Event),
            // Only the event engine reaches these machine sizes: no
            // thread-per-node engine spawns 4096+ OS threads.
            case("spinup", 4096, Engine::Event),
            case("spinup", 65536, Engine::Event),
        ]
    };

    // Correctness first: a fast engine that simulates wrong times is
    // worse than a slow one.
    for &case in &cases {
        if let Err(e) = verify(case) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    println!("all engine cases verified against closed-form virtual times");

    let reps = if smoke { 3 } else { 9 };
    let mut rows: Vec<String> = Vec::new();
    println!(
        "{:<12} {:>6} {:>9} {:>12} {:>10}",
        "case", "p", "engine", "seconds", "vs base"
    );
    for &case in &cases {
        let secs = time_case(case, reps);
        let engine = case.engine.to_string();
        let base = baseline
            .iter()
            .find(|(n, p, e, _)| n == case.name && *p == case.p && *e == engine)
            .or_else(|| {
                // Pre-event baselines only carry threaded rows; scoring
                // an event case against the threaded row at the same
                // shape is exactly the engine-vs-engine comparison the
                // file exists to record.
                baseline
                    .iter()
                    .find(|(n, p, e, _)| n == case.name && *p == case.p && e == "threaded")
            })
            .map(|&(_, _, _, s)| s);
        let speedup = base.map_or(0.0, |b| b / secs);
        println!(
            "{:<12} {:>6} {:>9} {:>12.6} {:>10}",
            case.name,
            case.p,
            engine,
            secs,
            base.map_or_else(|| "-".to_string(), |_| format!("{speedup:.2}x")),
        );
        rows.push(format!(
            "    {{\"case\": \"{}\", \"p\": {}, \"engine\": \"{}\", \"seconds\": {:.6}, \"speedup_vs_baseline\": {:.3}}}",
            case.name, case.p, engine, secs, speedup
        ));
    }

    if !smoke {
        let json = format!(
            "{{\n  \"bench\": \"simnet_engine\",\n  \"baseline\": \
             \"thread-per-node engine with progress ledger (PR 4)\",\n  \"results\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        std::fs::write("BENCH_simnet.json", &json).expect("write BENCH_simnet.json");
        println!("wrote BENCH_simnet.json");
    }
}
