//! Regenerates **Table 1**: optimal broadcasting and personalized
//! communication costs on an N-processor hypercube, comparing the
//! paper's closed forms against costs *measured* from the executable
//! collective schedules on the simulated machine.
//!
//! Usage: `cargo run -p cubemm-bench --bin table1 [-- --max-dim D]`

use cubemm_bench::{fmt, write_result, Table};
use cubemm_collectives as coll;
use cubemm_simnet::{CostParams, Machine, Payload, PortModel};
use cubemm_topology::Subcube;

const COST: CostParams = CostParams { ts: 1.0, tw: 1.0 };

fn payload(rank: usize, m: usize) -> Payload {
    (0..m).map(|x| (rank * 100 + x) as f64).collect()
}

/// Runs one collective on an N = 2^d cube with M-word messages and
/// returns the measured elapsed virtual time.
fn measure(kind: &str, d: u32, m: usize, port: PortModel) -> f64 {
    let p = 1usize << d;
    #[allow(
        clippy::expect_used,
        reason = "fixed, valid bench machines; a failure is a bench bug"
    )]
    let out = Machine::builder(p)
        .port(port)
        .cost(COST)
        .build()
        .expect("valid bench machine")
        .run(vec![(); p], move |mut proc, ()| async move {
            let sc = Subcube::whole(proc.dim());
            let v = sc.rank_of(proc.id());
            match kind {
                "one-to-all broadcast" => {
                    let data = (v == 0).then(|| payload(0, m));
                    let _ = coll::bcast(&mut proc, &sc, 0, 0, data, m).await;
                }
                "one-to-all personalized" => {
                    let parts =
                        (v == 0).then(|| (0..sc.size()).map(|r| payload(r, m)).collect::<Vec<_>>());
                    let _ = coll::scatter(&mut proc, &sc, 0, 0, parts, m).await;
                }
                "all-to-all broadcast" => {
                    let _ = coll::allgather(&mut proc, &sc, 0, payload(v, m)).await;
                }
                "all-to-all personalized" => {
                    let parts: Vec<Payload> = (0..sc.size()).map(|r| payload(r, m)).collect();
                    let _ = coll::alltoall_personalized(&mut proc, &sc, 0, parts).await;
                }
                other => unreachable!("unknown collective {other}"),
            }
        })
        .expect("healthy bench run");
    out.stats.elapsed
}

/// The paper's Table 1 prediction (t_s = t_w = 1).
fn predicted(kind: &str, d: u32, m: usize, port: PortModel) -> f64 {
    let n = (1usize << d) as f64;
    let mf = m as f64;
    let df = f64::from(d);
    let tw = match (kind, port) {
        ("one-to-all broadcast", PortModel::OnePort) => mf * df,
        ("one-to-all broadcast", PortModel::MultiPort) => mf,
        ("one-to-all personalized", PortModel::OnePort) => (n - 1.0) * mf,
        ("one-to-all personalized", PortModel::MultiPort) => (n - 1.0) * mf / df,
        ("all-to-all broadcast", PortModel::OnePort) => (n - 1.0) * mf,
        ("all-to-all broadcast", PortModel::MultiPort) => (n - 1.0) * mf / df,
        ("all-to-all personalized", PortModel::OnePort) => n * mf * df / 2.0,
        ("all-to-all personalized", PortModel::MultiPort) => n * mf / 2.0,
        _ => unreachable!(),
    };
    df + tw // t_s term is log N for every row
}

fn main() {
    let max_dim: u32 = std::env::args()
        .skip_while(|a| a != "--max-dim")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    println!("=== Table 1: collective communication costs (measured vs paper) ===");
    println!("message cost model: t_s = 1, t_w = 1; M words per message\n");

    let kinds = [
        "one-to-all broadcast",
        "one-to-all personalized",
        "all-to-all broadcast",
        "all-to-all personalized",
    ];
    let mut table = Table::new(&["collective", "port", "N", "M", "measured", "paper", "ratio"]);
    let mut worst: f64 = 1.0;
    for kind in kinds {
        for port in [PortModel::OnePort, PortModel::MultiPort] {
            for d in [2u32, 3, max_dim.max(4)] {
                // M chosen ≥ log N so multi-port slicing has full effect
                // (the Table 1 condition M ≥ log N).
                for m in [16usize, 60] {
                    let measured = measure(kind, d, m, port);
                    let paper = predicted(kind, d, m, port);
                    let ratio = measured / paper;
                    worst = worst.max(ratio.max(1.0 / ratio));
                    table.row(vec![
                        kind.to_string(),
                        port.to_string(),
                        (1usize << d).to_string(),
                        m.to_string(),
                        fmt(measured),
                        fmt(paper),
                        format!("{ratio:.3}"),
                    ]);
                }
            }
        }
    }
    println!("{}", table.render());
    println!("worst measured/paper ratio: {worst:.3}");
    if let Ok(path) = write_result("table1.csv", &table.to_csv()) {
        println!("csv written to {}", path.display());
    }
}
