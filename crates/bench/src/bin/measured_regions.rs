//! The Figure 13/14 cross-check the paper could not run: a *measured*
//! best-algorithm region map. For every `(n, p)` cell in a
//! simulator-feasible sweep, every applicable contender is actually
//! executed on the simulated machine at the paper's cost parameters, and
//! the measured winner is compared with the Table 2 prediction.
//!
//! Usage: `cargo run --release -p cubemm-bench --bin measured_regions`

use cubemm_bench::{write_result, Table};
use cubemm_core::{Algorithm, MachineConfig};
use cubemm_dense::Matrix;
use cubemm_model::{best_algorithm, ModelAlgo};
use cubemm_simnet::{CostParams, PortModel};

/// The model-side twin of a runnable contender.
fn model_of(algo: Algorithm) -> Option<ModelAlgo> {
    Some(match algo {
        Algorithm::Cannon => ModelAlgo::Cannon,
        Algorithm::Hje => ModelAlgo::Hje,
        Algorithm::Berntsen => ModelAlgo::Berntsen,
        Algorithm::Diag3d => ModelAlgo::Diag3d,
        Algorithm::All3d => ModelAlgo::All3d,
        _ => return None,
    })
}

fn main() {
    let ns = [16usize, 32, 64];
    let ps = [4usize, 8, 16, 64, 512];
    let contenders = Algorithm::COMPARED;

    let mut table = Table::new(&["port", "n", "p", "measured winner", "predicted", "agree"]);
    let mut cells = 0usize;
    let mut agreements = 0usize;

    for port in [PortModel::OnePort, PortModel::MultiPort] {
        for &n in &ns {
            for &p in &ps {
                let a = Matrix::random(n, n, 1);
                let b = Matrix::random(n, n, 2);
                let mut best: Option<(Algorithm, f64)> = None;
                for algo in contenders {
                    if algo.check(n, p).is_err() {
                        continue;
                    }
                    let cfg = MachineConfig::new(port, CostParams::PAPER);
                    let res = algo.multiply(&a, &b, p, &cfg).expect("checked");
                    let t = res.stats.elapsed;
                    if best.is_none_or(|(_, bt)| t < bt) {
                        best = Some((algo, t));
                    }
                }
                let Some((winner, _)) = best else { continue };
                // Predict among the contenders that can actually form
                // their virtual grid at this exact (n, p) — the paper's
                // figures treat p as continuous, the machine cannot.
                let runnable: Vec<ModelAlgo> = contenders
                    .iter()
                    .filter(|a| a.check(n, p).is_ok())
                    .filter_map(|a| model_of(*a))
                    .collect();
                let predicted = best_algorithm(
                    &runnable,
                    port,
                    n,
                    p,
                    CostParams::PAPER.ts,
                    CostParams::PAPER.tw,
                )
                .map(|(m, _)| m.name());
                let agree = predicted == Some(winner.name());
                cells += 1;
                agreements += usize::from(agree);
                table.row(vec![
                    port.to_string(),
                    n.to_string(),
                    p.to_string(),
                    winner.name().to_string(),
                    predicted.unwrap_or("-").to_string(),
                    if agree { "yes" } else { "NO" }.to_string(),
                ]);
            }
        }
    }

    println!("=== measured vs predicted best algorithm (Figures 13/14 cross-check) ===\n");
    println!("{}", table.render());
    println!("agreement: {agreements}/{cells} cells");
    println!(
        "(disagreements, if any, occur where the measured 3DD one-port\n\
         overhead undercuts the paper's additive bound — the measured map is\n\
         the more favorable one for the paper's new algorithms)"
    );
    if let Ok(path) = write_result("measured_regions.csv", &table.to_csv()) {
        println!("csv written to {}", path.display());
    }
}
