//! Regenerates **Figure 13** (one-port) and **Figure 14** (multi-port):
//! the `(n, p)` parameter space marked with the algorithm that has the
//! least communication overhead, for several `(t_s, t_w)` settings.
//!
//! The paper generated these figures "by a computer program on the basis
//! of the expressions in Table 2" (§5); this binary is that program. The
//! paper states one parameter set explicitly (`t_s = 150, t_w = 3`) and
//! describes the others only as having "very small values of t_s"; the
//! four panels here therefore sweep the t_s/t_w ratio from 50 down to 0
//! (see EXPERIMENTS.md, E4/E5).
//!
//! Usage:
//!   cargo run -p cubemm-bench --bin figures            # both figures
//!   cargo run -p cubemm-bench --bin figures -- --figure 13

use cubemm_bench::{write_result, Table};
use cubemm_model::{render_ascii, PortModel, RegionMap, Sweep};

/// Panel parameter sets: (label, t_s, t_w).
const PANELS: [(&str, f64, f64); 4] = [
    ("a", 150.0, 3.0), // the paper's explicitly stated setting
    ("b", 35.0, 3.0),
    ("c", 5.0, 3.0),
    ("d", 0.5, 3.0), // "very small values of t_s"
];

fn emit(figure: u32, port: PortModel) {
    println!("=== Figure {figure}: best algorithm regions, {port} hypercube ===\n");
    let mut csv = Table::new(&["panel", "ts", "tw", "n", "p", "winner"]);
    for (label, ts, tw) in PANELS {
        let map = RegionMap::generate(Sweep::default(), port, ts, tw);
        println!("--- Figure {figure}({label}) ---");
        println!("{}", render_ascii(&map));
        for (n, p, algo) in map.rows() {
            csv.row(vec![
                label.to_string(),
                ts.to_string(),
                tw.to_string(),
                n.to_string(),
                p.to_string(),
                algo.name().to_string(),
            ]);
        }
    }
    let name = format!("figure{figure}.csv");
    if let Ok(path) = write_result(&name, &csv.to_csv()) {
        println!("csv written to {}\n", path.display());
    }
}

fn main() {
    let figure: Option<u32> = std::env::args()
        .skip_while(|a| a != "--figure")
        .nth(1)
        .and_then(|v| v.parse().ok());
    match figure {
        Some(13) => emit(13, PortModel::OnePort),
        Some(14) => emit(14, PortModel::MultiPort),
        Some(other) => eprintln!("unknown figure {other}; use 13 or 14"),
        None => {
            emit(13, PortModel::OnePort);
            emit(14, PortModel::MultiPort);
        }
    }
}
