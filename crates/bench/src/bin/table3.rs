//! Regenerates **Table 3**: applicability conditions and overall space,
//! comparing the paper's formulas with the peak resident words *measured*
//! across all nodes of real simulated runs.
//!
//! Usage: `cargo run --release -p cubemm-bench --bin table3`

use cubemm_bench::{fmt, write_result, Table};
use cubemm_core::{Algorithm, MachineConfig};
use cubemm_dense::Matrix;
use cubemm_model::{total_space, ModelAlgo, PortModel};
use cubemm_simnet::CostParams;

fn model_of(algo: Algorithm) -> Option<ModelAlgo> {
    Some(match algo {
        Algorithm::Simple => ModelAlgo::Simple,
        Algorithm::Cannon => ModelAlgo::Cannon,
        Algorithm::Hje => ModelAlgo::Hje,
        Algorithm::Berntsen => ModelAlgo::Berntsen,
        Algorithm::Dns => ModelAlgo::Dns,
        Algorithm::Diag3d => ModelAlgo::Diag3d,
        Algorithm::All3d => ModelAlgo::All3d,
        _ => return None,
    })
}

fn main() {
    let configs = [(64usize, 64usize), (32, 64), (64, 8)];
    println!("=== Table 3: overall space used (measured peak words vs paper) ===\n");
    let mut table = Table::new(&[
        "algorithm",
        "n",
        "p",
        "measured words",
        "paper words",
        "ratio",
    ]);
    for (n, p) in configs {
        for algo in Algorithm::ALL {
            if algo.check(n, p).is_err() {
                continue;
            }
            let a = Matrix::random(n, n, 1);
            let b = Matrix::random(n, n, 2);
            let cfg = MachineConfig::new(PortModel::OnePort, CostParams::PAPER);
            let res = algo.multiply(&a, &b, p, &cfg).expect("applicable");
            let measured = res.stats.total_peak_words() as f64;
            let paper = model_of(algo).and_then(|m| total_space(m, n, p));
            let (ps, ratio) = paper.map_or(("-".into(), "-".into()), |s| {
                (fmt(s), format!("{:.3}", measured / s))
            });
            table.row(vec![
                algo.name().to_string(),
                n.to_string(),
                p.to_string(),
                fmt(measured),
                ps,
                ratio,
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "notes: measured = sum over nodes of each node's peak resident matrix\n\
         words. The paper's column counts the replicated *input* storage only;\n\
         the measurement additionally sees the outer-product accumulators and\n\
         staging blocks, so e.g. DNS/3DD measure 3n²·cbrt(p) against the paper's\n\
         2n²·cbrt(p) (ratio 1.5) and Cannon measures exactly 3n² (ratio 1.0,\n\
         its Table 3 entry already includes C). Ratios are constant in n for\n\
         fixed p, confirming the growth rates of the column."
    );
    if let Ok(path) = write_result("table3.csv", &table.to_csv()) {
        println!("csv written to {}", path.display());
    }
}
