//! Supplementary analysis in the style of the paper's reference \[5\]
//! (Gupta & Kumar): efficiency tables and isoefficiency curves derived
//! from the Table 2 overheads — how fast the problem must grow with the
//! machine for each algorithm to hold 50% efficiency.
//!
//! Usage: `cargo run -p cubemm-bench --bin scalability`

use cubemm_bench::{write_result, Table};
use cubemm_model::{efficiency, isoefficiency_n, ModelAlgo, PortModel, ScaleParams};

fn main() {
    let params = ScaleParams::PAPER;
    let machines = [64usize, 512, 4096, 1 << 15, 1 << 18];

    println!("=== efficiency at n = 1024 (ts=150, tw=3, tc=1) ===\n");
    let mut eff = Table::new(&["algorithm", "port", "p=64", "p=512", "p=4096", "p=2^15"]);
    for algo in ModelAlgo::ALL {
        for port in [PortModel::OnePort, PortModel::MultiPort] {
            let cells: Vec<String> = [64usize, 512, 4096, 1 << 15]
                .iter()
                .map(|&p| {
                    efficiency(algo, port, 1024, p, params)
                        .map_or("-".into(), |e| format!("{e:.3}"))
                })
                .collect();
            if cells.iter().all(|c| c == "-") {
                continue;
            }
            let mut row = vec![algo.name().to_string(), port.to_string()];
            row.extend(cells);
            eff.row(row);
        }
    }
    println!("{}", eff.render());

    println!("=== isoefficiency: smallest power-of-two n reaching E = 0.5 ===\n");
    let mut iso = Table::new(&[
        "algorithm",
        "port",
        "p=64",
        "p=512",
        "p=4096",
        "p=2^15",
        "p=2^18",
    ]);
    for algo in ModelAlgo::ALL {
        for port in [PortModel::OnePort, PortModel::MultiPort] {
            let cells: Vec<String> = machines
                .iter()
                .map(|&p| {
                    isoefficiency_n(algo, port, p, params, 0.5)
                        .map_or("-".into(), |n| n.to_string())
                })
                .collect();
            if cells.iter().all(|c| c == "-") {
                continue;
            }
            let mut row = vec![algo.name().to_string(), port.to_string()];
            row.extend(cells);
            iso.row(row);
        }
    }
    println!("{}", iso.render());
    println!(
        "reading: smaller n = flatter isoefficiency curve = more scalable.\n\
         3-D All posts the smallest requirement wherever it applies; DNS pays\n\
         its volume-heavy broadcasts; Cannon pays √p start-ups."
    );
    if let Ok(path) = write_result("scalability.csv", &iso.to_csv()) {
        println!("csv written to {}", path.display());
    }
}
