//! Local GEMM kernel throughput: the checked-in perf trajectory.
//!
//! Measures GFLOP/s (`2·n³` flops per product) for every kernel at a
//! range of sizes and writes the results as `BENCH_kernels.json` in the
//! working directory, the file the README perf table is generated from.
//!
//! ```text
//! cargo run --release -p cubemm-bench --bin kernel_bench              # full run
//! cargo run --release -p cubemm-bench --bin kernel_bench -- --smoke   # CI smoke
//!   --sizes 128,256,512     override the size grid
//!   --threads 1,2,4         thread counts for the packed rows
//!   --assert-scaling 2.0    fail unless max-threads packed ≥ 2.0x its
//!                           1-thread row at the largest size ≥ 512
//!                           (soft-warns instead when the host has
//!                           fewer cores than the top thread count)
//! ```
//!
//! The packed kernel is benched per microkernel implementation
//! (`packed-scalar-*` forced onto the portable 4×8 tile,
//! `packed-simd-*` on the AVX2+FMA 6×8 tile when the host has it) and
//! per thread count, with a machine-readable `speedup_vs_1t` column so
//! CI can assert parallel scaling. `--smoke` runs small sizes only,
//! cross-checks every kernel against the naive product, and exits
//! non-zero on mismatch — a cheap guard that keeps the kernel and bench
//! code from bit-rotting. The full run performs the same verification
//! before timing anything.

use std::time::Instant;

use cubemm_dense::gemm::{gemm_acc_with_microkernel, Kernel, PAR_MIN_ELEMS};
use cubemm_dense::microkernel::MicrokernelImpl;
use cubemm_dense::Matrix;

struct KernelSpec {
    name: String,
    kernel: Kernel,
    mk: MicrokernelImpl,
    /// Name of this spec's single-thread sibling for the speedup column
    /// (its own name for 1t and non-packed rows).
    base_1t: String,
}

fn kernels(threads: &[usize]) -> Vec<KernelSpec> {
    let scalar = MicrokernelImpl::Scalar;
    let mut v = vec![
        KernelSpec {
            name: "naive".into(),
            kernel: Kernel::Naive,
            mk: scalar,
            base_1t: "naive".into(),
        },
        KernelSpec {
            name: "ikj".into(),
            kernel: Kernel::Ikj,
            mk: scalar,
            base_1t: "ikj".into(),
        },
        KernelSpec {
            name: "blocked64".into(),
            kernel: Kernel::Blocked(64),
            mk: scalar,
            base_1t: "blocked64".into(),
        },
    ];
    let mut impls = vec![("packed-scalar", scalar)];
    if MicrokernelImpl::detect() == MicrokernelImpl::Avx2 {
        impls.push(("packed-simd", MicrokernelImpl::Avx2));
    }
    for (family, mk) in impls {
        for &t in threads {
            v.push(KernelSpec {
                name: format!("{family}-{t}t"),
                kernel: Kernel::packed_mt(t),
                mk,
                base_1t: format!("{family}-1t"),
            });
        }
    }
    v
}

/// Median-of-`reps` seconds for one `n×n×n` product with `spec`.
fn time_product(n: usize, spec: &KernelSpec, reps: usize) -> f64 {
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let mut c = Matrix::zeros(n, n);
    // Warm-up (and pool/buffer spin-up).
    gemm_acc_with_microkernel(&mut c, &a, &b, spec.kernel, spec.mk);
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let mut c = Matrix::zeros(n, n);
            let t = Instant::now();
            gemm_acc_with_microkernel(&mut c, &a, &b, spec.kernel, spec.mk);
            let dt = t.elapsed().as_secs_f64();
            std::hint::black_box(&c);
            dt
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Verifies `spec` against the naive product at size `n`.
fn verify(n: usize, spec: &KernelSpec) -> Result<(), String> {
    let a = Matrix::random(n, n, 3);
    let b = Matrix::random(n, n, 4);
    let mut want = Matrix::zeros(n, n);
    gemm_acc_with_microkernel(&mut want, &a, &b, Kernel::Naive, MicrokernelImpl::Scalar);
    let mut got = Matrix::zeros(n, n);
    gemm_acc_with_microkernel(&mut got, &a, &b, spec.kernel, spec.mk);
    let err = got.max_abs_diff(&want);
    if err > 1e-9 * n as f64 {
        return Err(format!(
            "kernel {} mismatch at n={n}: max |Δ| = {err:.2e}",
            spec.name
        ));
    }
    Ok(())
}

fn parse_list(raw: &str, flag: &str) -> Vec<usize> {
    raw.split(',')
        .map(|tok| match tok.trim().parse::<usize>() {
            Ok(v) if v > 0 => v,
            _ => {
                eprintln!("error: {flag} wants positive comma-separated integers, got {tok:?}");
                std::process::exit(2);
            }
        })
        .collect()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let flag_val = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let sizes: Vec<usize> = match flag_val("--sizes") {
        Some(raw) => parse_list(&raw, "--sizes"),
        None if smoke => vec![64, 96],
        None => vec![128, 256, 512, 768],
    };
    let threads: Vec<usize> = match flag_val("--threads") {
        Some(raw) => parse_list(&raw, "--threads"),
        None => vec![1, 2, 4],
    };
    let assert_scaling: Option<f64> = flag_val("--assert-scaling").map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("error: --assert-scaling wants a number, got {raw:?}");
            std::process::exit(2);
        })
    });
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let specs = kernels(&threads);

    // Correctness first: a fast wrong kernel is worse than a slow one.
    // 31 exercises every ragged-edge path of both register tiles.
    for &n in if smoke {
        &[31usize, 64][..]
    } else {
        &[31usize, 128][..]
    } {
        for spec in &specs {
            if let Err(e) = verify(n, spec) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "all kernels verified against naive (microkernel: {}, host cores: {host_cores})",
        MicrokernelImpl::active().name()
    );

    let mut rows: Vec<String> = Vec::new();
    let mut table: Vec<(String, usize, f64)> = Vec::new();
    println!(
        "{:<16} {:>6} {:>12} {:>10} {:>8}",
        "kernel", "n", "time", "GFLOP/s", "vs-1t"
    );
    for &n in &sizes {
        let reps = if n >= 512 { 3 } else { 5 };
        for spec in &specs {
            if smoke && matches!(spec.kernel, Kernel::Naive) && n > 64 {
                continue; // keep the smoke job snappy
            }
            let secs = time_product(n, spec, reps);
            let gflops = 2.0 * (n as f64).powi(3) / secs / 1e9;
            let base = table
                .iter()
                .find(|(name, bn, _)| *name == spec.base_1t && *bn == n)
                .map_or(gflops, |&(_, _, g)| g);
            let speedup = if base > 0.0 { gflops / base } else { 0.0 };
            table.push((spec.name.clone(), n, gflops));
            let spawned = matches!(spec.kernel, Kernel::Packed { threads: t, .. }
                if t != 1 && n.pow(3) > PAR_MIN_ELEMS);
            println!(
                "{:<16} {:>6} {:>10.2}ms {:>10.2} {:>7.2}x{}",
                spec.name,
                n,
                secs * 1e3,
                gflops,
                speedup,
                if matches!(spec.kernel, Kernel::Packed { threads: t, .. } if t != 1) && !spawned {
                    "  (below parallel threshold: ran 1t)"
                } else {
                    ""
                },
            );
            let t = match spec.kernel {
                Kernel::Packed { threads, .. } => threads,
                _ => 1,
            };
            rows.push(format!(
                "    {{\"kernel\": \"{}\", \"n\": {}, \"threads\": {}, \"seconds\": {:.6}, \"gflops\": {:.3}, \"speedup_vs_1t\": {:.3}}}",
                spec.name, n, t, secs, gflops, speedup
            ));
        }
    }

    if !smoke {
        let json = format!(
            "{{\n  \"bench\": \"local_gemm_kernels\",\n  \"flops_formula\": \"2*n^3\",\n  \"microkernel\": \"{}\",\n  \"host_cores\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
            MicrokernelImpl::active().name(),
            host_cores,
            rows.join(",\n")
        );
        match std::fs::write("BENCH_kernels.json", &json) {
            Ok(()) => println!("wrote BENCH_kernels.json"),
            Err(e) => {
                eprintln!("error: writing BENCH_kernels.json: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(min) = assert_scaling {
        let top = threads.iter().copied().max().unwrap_or(1);
        let family = if MicrokernelImpl::active() == MicrokernelImpl::Avx2 {
            "packed-simd"
        } else {
            "packed-scalar"
        };
        let Some(&n) = sizes.iter().filter(|&&n| n >= 512).max() else {
            eprintln!("warning: --assert-scaling needs a size >= 512 in --sizes; skipping");
            return;
        };
        let find = |name: &str| {
            table
                .iter()
                .find(|(t, bn, _)| t == name && *bn == n)
                .map(|&(_, _, g)| g)
        };
        let (one, multi) = (
            find(&format!("{family}-1t")),
            find(&format!("{family}-{top}t")),
        );
        let (Some(one), Some(multi)) = (one, multi) else {
            eprintln!("warning: --assert-scaling found no {family} 1t/{top}t rows at n={n}");
            std::process::exit(1);
        };
        let ratio = multi / one;
        println!(
            "scaling: {family}-{top}t / {family}-1t = {ratio:.2}x at n={n} (want >= {min:.2}x)"
        );
        if ratio < min {
            if host_cores < top {
                println!(
                    "warning: scaling below target, but host has only {host_cores} core(s) \
                     for a {top}-thread row — soft-failing"
                );
            } else {
                eprintln!("error: parallel scaling regression: {ratio:.2}x < {min:.2}x");
                std::process::exit(1);
            }
        }
    }
}
