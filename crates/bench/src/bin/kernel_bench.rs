//! Local GEMM kernel throughput: the checked-in perf trajectory.
//!
//! Measures GFLOP/s (`2·n³` flops per product) for every kernel at a
//! range of sizes and writes the results as `BENCH_kernels.json` in the
//! working directory, the file the README perf table is generated from.
//!
//! ```text
//! cargo run --release -p cubemm-bench --bin kernel_bench            # full run
//! cargo run --release -p cubemm-bench --bin kernel_bench -- --smoke # CI smoke
//! ```
//!
//! `--smoke` runs small sizes only, cross-checks every kernel against
//! the naive product, and exits non-zero on mismatch — a cheap guard
//! that keeps the kernel and bench code from bit-rotting. The full run
//! performs the same verification before timing anything.

use std::time::Instant;

use cubemm_dense::gemm::{gemm_acc, Kernel};
use cubemm_dense::Matrix;

struct KernelSpec {
    name: &'static str,
    kernel: Kernel,
}

fn kernels() -> Vec<KernelSpec> {
    vec![
        KernelSpec {
            name: "naive",
            kernel: Kernel::Naive,
        },
        KernelSpec {
            name: "ikj",
            kernel: Kernel::Ikj,
        },
        KernelSpec {
            name: "blocked64",
            kernel: Kernel::Blocked(64),
        },
        KernelSpec {
            name: "packed-1t",
            kernel: Kernel::packed(),
        },
        KernelSpec {
            name: "packed-2t",
            kernel: Kernel::packed_mt(2),
        },
        KernelSpec {
            name: "packed-4t",
            kernel: Kernel::packed_mt(4),
        },
    ]
}

/// Median-of-`reps` seconds for one `n×n×n` product with `kernel`.
fn time_product(n: usize, kernel: Kernel, reps: usize) -> f64 {
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let mut c = Matrix::zeros(n, n);
    gemm_acc(&mut c, &a, &b, kernel); // warm-up (and pool/buffer spin-up)
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let mut c = Matrix::zeros(n, n);
            let t = Instant::now();
            gemm_acc(&mut c, &a, &b, kernel);
            let dt = t.elapsed().as_secs_f64();
            std::hint::black_box(&c);
            dt
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Verifies `kernel` against the naive product at size `n`.
fn verify(n: usize, spec: &KernelSpec) -> Result<(), String> {
    let a = Matrix::random(n, n, 3);
    let b = Matrix::random(n, n, 4);
    let mut want = Matrix::zeros(n, n);
    gemm_acc(&mut want, &a, &b, Kernel::Naive);
    let mut got = Matrix::zeros(n, n);
    gemm_acc(&mut got, &a, &b, spec.kernel);
    let err = got.max_abs_diff(&want);
    if err > 1e-9 * n as f64 {
        return Err(format!(
            "kernel {} mismatch at n={n}: max |Δ| = {err:.2e}",
            spec.name
        ));
    }
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[64, 96]
    } else {
        &[128, 256, 512, 768]
    };
    let specs = kernels();

    // Correctness first: a fast wrong kernel is worse than a slow one.
    for &n in if smoke {
        &[31usize, 64][..]
    } else {
        &[31usize, 128][..]
    } {
        for spec in &specs {
            if let Err(e) = verify(n, spec) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("all kernels verified against naive");

    let mut rows: Vec<String> = Vec::new();
    println!(
        "{:<12} {:>6} {:>12} {:>10}",
        "kernel", "n", "time", "GFLOP/s"
    );
    for &n in sizes {
        let reps = if n >= 512 { 3 } else { 5 };
        let mut ikj_gflops = 0.0;
        for spec in &specs {
            if smoke && matches!(spec.kernel, Kernel::Naive) && n > 64 {
                continue; // keep the smoke job snappy
            }
            let secs = time_product(n, spec.kernel, reps);
            let gflops = 2.0 * (n as f64).powi(3) / secs / 1e9;
            if spec.name == "ikj" {
                ikj_gflops = gflops;
            }
            let speedup = if ikj_gflops > 0.0 {
                gflops / ikj_gflops
            } else {
                0.0
            };
            println!(
                "{:<12} {:>6} {:>10.2}ms {:>10.2}  ({speedup:.2}x ikj)",
                spec.name,
                n,
                secs * 1e3,
                gflops,
            );
            rows.push(format!(
                "    {{\"kernel\": \"{}\", \"n\": {}, \"seconds\": {:.6}, \"gflops\": {:.3}, \"speedup_vs_ikj\": {:.3}}}",
                spec.name, n, secs, gflops, speedup
            ));
        }
    }

    if !smoke {
        let json = format!(
            "{{\n  \"bench\": \"local_gemm_kernels\",\n  \"flops_formula\": \"2*n^3\",\n  \"results\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        match std::fs::write("BENCH_kernels.json", &json) {
            Ok(()) => println!("wrote BENCH_kernels.json"),
            Err(e) => {
                eprintln!("error: writing BENCH_kernels.json: {e}");
                std::process::exit(1);
            }
        }
    }
}
