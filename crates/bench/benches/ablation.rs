//! Ablation benchmarks for the design choices called out in DESIGN.md §6.
//!
//! The microbench harness measures host wall time; each ablation also prints the
//! *virtual* communication times once at start-up, since those are the
//! quantity the design choices actually trade off.

use cubemm_bench::microbench::{BenchmarkId, Criterion};
use cubemm_bench::{criterion_group, criterion_main};
use cubemm_core::{Algorithm, MachineConfig};
use cubemm_dense::gemm::Kernel;
use cubemm_dense::Matrix;
use cubemm_simnet::{CostParams, PortModel};

fn virtual_time(algo: Algorithm, n: usize, p: usize, port: PortModel) -> f64 {
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let cfg = MachineConfig::new(port, CostParams::PAPER);
    algo.multiply(&a, &b, p, &cfg).unwrap().stats.elapsed
}

/// Ablation 1: one-port vs multi-port for the same algorithm.
fn ablation_port_model(c: &mut Criterion) {
    let (n, p) = (64usize, 64usize);
    for algo in [Algorithm::Cannon, Algorithm::Diag3d, Algorithm::All3d] {
        let one = virtual_time(algo, n, p, PortModel::OnePort);
        let multi = virtual_time(algo, n, p, PortModel::MultiPort);
        println!(
            "[ablation:port] {} n={n} p={p}: one-port {one:.0} vs multi-port {multi:.0} \
             (gain {:.2}x)",
            algo.name(),
            one / multi
        );
    }

    let mut group = c.benchmark_group("ablation_port_model");
    group.sample_size(10);
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    for port in [PortModel::OnePort, PortModel::MultiPort] {
        let cfg = MachineConfig::new(port, CostParams::PAPER);
        group.bench_with_input(BenchmarkId::new("3d-all", port), &cfg, |bench, cfg| {
            bench.iter(|| Algorithm::All3d.multiply(&a, &b, p, cfg).unwrap())
        });
    }
    group.finish();
}

/// Ablation 2: skew-based (Cannon) vs broadcast-based (3D All) data
/// movement at a fixed machine shape.
fn ablation_skew_vs_broadcast(c: &mut Criterion) {
    let (n, p) = (64usize, 64usize);
    for port in [PortModel::OnePort, PortModel::MultiPort] {
        let cannon = virtual_time(Algorithm::Cannon, n, p, port);
        let all3d = virtual_time(Algorithm::All3d, n, p, port);
        println!("[ablation:movement] {port} n={n} p={p}: cannon {cannon:.0} vs 3d-all {all3d:.0}");
    }

    let mut group = c.benchmark_group("ablation_skew_vs_broadcast");
    group.sample_size(10);
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let cfg = MachineConfig::new(PortModel::OnePort, CostParams::PAPER);
    for algo in [Algorithm::Cannon, Algorithm::All3d] {
        group.bench_with_input(BenchmarkId::new(algo.name(), n), &cfg, |bench, cfg| {
            bench.iter(|| algo.multiply(&a, &b, p, cfg).unwrap())
        });
    }
    group.finish();
}

/// Ablation 3: the 3-D All first phase (AAPC) vs the 3-D All_Trans first
/// phase (gather + bigger broadcast) — the delta §4.2.2 highlights.
fn ablation_all_vs_all_trans(c: &mut Criterion) {
    let (n, p) = (64usize, 64usize);
    for port in [PortModel::OnePort, PortModel::MultiPort] {
        let trans = virtual_time(Algorithm::AllTrans3d, n, p, port);
        let all = virtual_time(Algorithm::All3d, n, p, port);
        println!(
            "[ablation:first-phase] {port} n={n} p={p}: all-trans {trans:.0} vs 3d-all {all:.0}"
        );
    }

    let mut group = c.benchmark_group("ablation_first_phase");
    group.sample_size(10);
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let cfg = MachineConfig::new(PortModel::OnePort, CostParams::PAPER);
    for algo in [Algorithm::AllTrans3d, Algorithm::All3d] {
        group.bench_with_input(BenchmarkId::new(algo.name(), n), &cfg, |bench, cfg| {
            bench.iter(|| algo.multiply(&a, &b, p, cfg).unwrap())
        });
    }
    group.finish();
}

/// Ablation 4: local kernel choice inside a fixed distributed run.
fn ablation_kernel_choice(c: &mut Criterion) {
    let (n, p) = (128usize, 64usize);
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let mut group = c.benchmark_group("ablation_kernel");
    group.sample_size(10);
    for (name, kernel) in [
        ("naive", Kernel::Naive),
        ("ikj", Kernel::Ikj),
        ("blocked32", Kernel::Blocked(32)),
    ] {
        let cfg = MachineConfig {
            kernel,
            ..MachineConfig::default()
        };
        group.bench_with_input(BenchmarkId::new(name, n), &cfg, |bench, cfg| {
            bench.iter(|| Algorithm::All3d.multiply(&a, &b, p, cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_port_model,
    ablation_skew_vs_broadcast,
    ablation_all_vs_all_trans,
    ablation_kernel_choice
);
criterion_main!(benches);
