//! Local GEMM kernel microbenchmarks (ablation: DESIGN.md §6 — the
//! kernel choice is orthogonal to the communication comparison; these
//! host-time numbers back that claim by showing all kernels are within a
//! small constant factor at block sizes the algorithms actually use).
//!
//! The packed rows are split per microkernel implementation (forced
//! scalar vs. the host's SIMD dispatch) so the ablation also records
//! what the lane width is worth at simulator block sizes.

use cubemm_bench::microbench::{black_box, BenchmarkId, Criterion};
use cubemm_bench::{criterion_group, criterion_main};
use cubemm_dense::gemm::{gemm_acc_with_microkernel, Kernel};
use cubemm_dense::microkernel::MicrokernelImpl;
use cubemm_dense::Matrix;

fn bench_kernels(c: &mut Criterion) {
    let scalar = MicrokernelImpl::Scalar;
    let active = MicrokernelImpl::active();
    let mut specs = vec![
        ("naive", Kernel::Naive, scalar),
        ("ikj", Kernel::Ikj, scalar),
        ("blocked32", Kernel::Blocked(32), scalar),
        ("packed-scalar", Kernel::packed(), scalar),
        ("packed-scalar2t", Kernel::packed_mt(2), scalar),
    ];
    if active != scalar {
        specs.push(("packed-simd", Kernel::packed(), active));
        specs.push(("packed-simd2t", Kernel::packed_mt(2), active));
    }
    let mut group = c.benchmark_group("local_gemm");
    for n in [32usize, 64, 128] {
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        for &(name, kernel, mk) in &specs {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |bench, _| {
                bench.iter(|| {
                    let mut out = Matrix::zeros(n, n);
                    gemm_acc_with_microkernel(&mut out, black_box(&a), black_box(&b), kernel, mk);
                    out
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
