//! Local GEMM kernel microbenchmarks (ablation: DESIGN.md §6 — the
//! kernel choice is orthogonal to the communication comparison; these
//! host-time numbers back that claim by showing all kernels are within a
//! small constant factor at block sizes the algorithms actually use).

use cubemm_bench::microbench::{black_box, BenchmarkId, Criterion};
use cubemm_bench::{criterion_group, criterion_main};
use cubemm_dense::gemm::{gemm_acc, Kernel};
use cubemm_dense::Matrix;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_gemm");
    for n in [32usize, 64, 128] {
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        for (name, kernel) in [
            ("naive", Kernel::Naive),
            ("ikj", Kernel::Ikj),
            ("blocked32", Kernel::Blocked(32)),
            ("packed", Kernel::packed()),
            ("packed2t", Kernel::packed_mt(2)),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |bench, _| {
                bench.iter(|| {
                    let mut out = Matrix::zeros(n, n);
                    gemm_acc(&mut out, black_box(&a), black_box(&b), kernel);
                    out
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
