//! End-to-end algorithm benchmarks: host wall time of full simulated
//! multiplications (distribution, SPMD run on p threads, reassembly).

use cubemm_bench::microbench::{BenchmarkId, Criterion};
use cubemm_bench::{criterion_group, criterion_main};
use cubemm_core::{Algorithm, MachineConfig};
use cubemm_dense::Matrix;
use cubemm_simnet::{CostParams, PortModel};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms_sim");
    group.sample_size(10);
    let n = 64usize;
    let p = 64usize;
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    for algo in Algorithm::ALL {
        for port in [PortModel::OnePort, PortModel::MultiPort] {
            if algo.check(n, p).is_err() {
                continue;
            }
            let cfg = MachineConfig::new(port, CostParams::PAPER);
            group.bench_with_input(BenchmarkId::new(algo.name(), port), &cfg, |bench, cfg| {
                bench.iter(|| algo.multiply(&a, &b, p, cfg).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
