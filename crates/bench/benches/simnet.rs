//! Execution-engine microbenchmarks: host-time cost of the simulator
//! itself (virtual times are pinned by the determinism tests; these
//! track how fast the engine reproduces them).

use cubemm_bench::criterion_group;
use cubemm_bench::criterion_main;
use cubemm_bench::microbench::{black_box, BenchmarkId, Criterion};
use cubemm_collectives::allgather;
use cubemm_simnet::{CostParams, Engine, Machine, Proc, RunOutcome};
use cubemm_topology::Subcube;

const COST: CostParams = CostParams { ts: 10.0, tw: 2.0 };

/// Boots a healthy one-port machine under `engine` and runs `program`.
fn run<O, F, Fut>(p: usize, engine: Engine, program: F) -> RunOutcome<O>
where
    O: Send,
    F: Fn(Proc, ()) -> Fut + Sync,
    Fut: std::future::Future<Output = O>,
{
    #[allow(
        clippy::expect_used,
        reason = "fixed, valid bench machines; a failure is a bench bug"
    )]
    Machine::builder(p)
        .cost(COST)
        .engine(engine)
        .build()
        .expect("valid bench machine")
        .run(vec![(); p], program)
        .expect("healthy bench run")
}

const ENGINES: [Engine; 2] = [Engine::Threaded, Engine::Event];

/// Machine spin-up/tear-down: `p` nodes, no communication. Compares the
/// thread-per-node engine against the single-threaded event engine.
fn bench_spinup(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet_spinup");
    group.sample_size(10);
    for engine in ENGINES {
        for p in [8usize, 64, 256] {
            let id = format!("{engine}/{p}");
            group.bench_with_input(BenchmarkId::new("spinup", id), &p, |b, &p| {
                b.iter(|| {
                    let out = run(p, engine, |proc, ()| async move { proc.id() });
                    black_box(out.stats.elapsed)
                })
            });
        }
    }
    group.finish();
}

/// Two nodes volleying a 4-word message: per-message engine latency.
fn bench_pingpong(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet_pingpong");
    group.sample_size(10);
    for engine in ENGINES {
        for rounds in [64u64, 512] {
            let id = format!("{engine}/{rounds}");
            group.bench_with_input(BenchmarkId::new("rounds", id), &rounds, |b, &rounds| {
                b.iter(|| {
                    let out = run(2, engine, move |mut proc, ()| async move {
                        let msg = vec![proc.id() as f64; 4];
                        for r in 0..rounds {
                            if proc.id() == 0 {
                                proc.send(1, r, msg.clone());
                                let _ = proc.recv(1, r).await;
                            } else {
                                let got = proc.recv(0, r).await;
                                proc.send(0, r, got);
                            }
                        }
                    });
                    black_box(out.stats.elapsed)
                })
            });
        }
    }
    group.finish();
}

/// Full-cube all-gather: the collective start-up pattern that dominates
/// the paper's algorithms (many small messages, every node involved).
fn bench_allgather(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet_allgather");
    group.sample_size(10);
    for engine in ENGINES {
        for p in [8usize, 64, 256] {
            let id = format!("{engine}/{p}");
            group.bench_with_input(BenchmarkId::new("allgather", id), &p, |b, &p| {
                let dim = p.trailing_zeros();
                b.iter(|| {
                    let out = run(p, engine, move |mut proc, ()| async move {
                        let sc = Subcube::whole(dim);
                        let mine: Vec<f64> = vec![proc.id() as f64; 64];
                        allgather(&mut proc, &sc, 0, mine.into()).await.len()
                    });
                    black_box(out.stats.elapsed)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(engine, bench_spinup, bench_pingpong, bench_allgather);
criterion_main!(engine);
