//! Execution-engine microbenchmarks: host-time cost of the simulator
//! itself (virtual times are pinned by the determinism tests; these
//! track how fast the engine reproduces them).

use cubemm_bench::criterion_group;
use cubemm_bench::criterion_main;
use cubemm_bench::microbench::{black_box, BenchmarkId, Criterion};
use cubemm_collectives::allgather;
use cubemm_simnet::{run_machine, CostParams, PortModel};
use cubemm_topology::Subcube;

const COST: CostParams = CostParams { ts: 10.0, tw: 2.0 };

/// Machine spin-up/tear-down: `p` node threads, no communication.
fn bench_spinup(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet_spinup");
    group.sample_size(10);
    for p in [8usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("spinup", p), &p, |b, &p| {
            b.iter(|| {
                let out = run_machine(p, PortModel::OnePort, COST, vec![(); p], |proc, ()| {
                    proc.id()
                });
                black_box(out.stats.elapsed)
            })
        });
    }
    group.finish();
}

/// Two nodes volleying a 4-word message: per-message engine latency.
fn bench_pingpong(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet_pingpong");
    group.sample_size(10);
    for rounds in [64u64, 512] {
        group.bench_with_input(BenchmarkId::new("rounds", rounds), &rounds, |b, &rounds| {
            b.iter(|| {
                let out = run_machine(2, PortModel::OnePort, COST, vec![(); 2], |proc, ()| {
                    let msg = vec![proc.id() as f64; 4];
                    for r in 0..rounds {
                        if proc.id() == 0 {
                            proc.send(1, r, msg.clone());
                            let _ = proc.recv(1, r);
                        } else {
                            let got = proc.recv(0, r);
                            proc.send(0, r, got);
                        }
                    }
                });
                black_box(out.stats.elapsed)
            })
        });
    }
    group.finish();
}

/// Full-cube all-gather: the collective start-up pattern that dominates
/// the paper's algorithms (many small messages, every node involved).
fn bench_allgather(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet_allgather");
    group.sample_size(10);
    for p in [8usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("allgather", p), &p, |b, &p| {
            let dim = p.trailing_zeros();
            b.iter(|| {
                let out = run_machine(p, PortModel::OnePort, COST, vec![(); p], move |proc, ()| {
                    let sc = Subcube::whole(dim);
                    let mine: Vec<f64> = vec![proc.id() as f64; 64];
                    allgather(proc, &sc, 0, mine.into()).len()
                });
                black_box(out.stats.elapsed)
            })
        });
    }
    group.finish();
}

criterion_group!(engine, bench_spinup, bench_pingpong, bench_allgather);
criterion_main!(engine);
