//! Collective-schedule benchmarks: host wall time of executing each
//! Table 1 collective on the simulated machine, one-port vs multi-port.
//! (The *virtual* costs are validated exactly in the test suites; these
//! benches track the simulator's own overhead.)

use cubemm_bench::microbench::{BenchmarkId, Criterion};
use cubemm_bench::{criterion_group, criterion_main};
use cubemm_collectives as coll;
use cubemm_simnet::{run_machine, CostParams, Payload, PortModel};
use cubemm_topology::Subcube;

const COST: CostParams = CostParams { ts: 1.0, tw: 1.0 };

fn payload(rank: usize, m: usize) -> Payload {
    (0..m).map(|x| (rank + x) as f64).collect()
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_sim");
    group.sample_size(20);
    let p = 16usize;
    let m = 256usize;
    for port in [PortModel::OnePort, PortModel::MultiPort] {
        group.bench_with_input(BenchmarkId::new("bcast", port), &port, |bench, &port| {
            bench.iter(|| {
                run_machine(p, port, COST, vec![(); p], |proc, ()| {
                    let sc = Subcube::whole(proc.dim());
                    let data = (sc.rank_of(proc.id()) == 0).then(|| payload(0, m));
                    coll::bcast(proc, &sc, 0, 0, data, m)
                })
            })
        });
        group.bench_with_input(
            BenchmarkId::new("allgather", port),
            &port,
            |bench, &port| {
                bench.iter(|| {
                    run_machine(p, port, COST, vec![(); p], |proc, ()| {
                        let sc = Subcube::whole(proc.dim());
                        let v = sc.rank_of(proc.id());
                        coll::allgather(proc, &sc, 0, payload(v, m))
                    })
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("alltoall", port), &port, |bench, &port| {
            bench.iter(|| {
                run_machine(p, port, COST, vec![(); p], |proc, ()| {
                    let sc = Subcube::whole(proc.dim());
                    let v = sc.rank_of(proc.id());
                    let parts: Vec<Payload> = (0..sc.size()).map(|r| payload(v + r, m)).collect();
                    coll::alltoall_personalized(proc, &sc, 0, parts)
                })
            })
        });
        group.bench_with_input(
            BenchmarkId::new("reduce_scatter", port),
            &port,
            |bench, &port| {
                bench.iter(|| {
                    run_machine(p, port, COST, vec![(); p], |proc, ()| {
                        let sc = Subcube::whole(proc.dim());
                        let v = sc.rank_of(proc.id());
                        let parts: Vec<Payload> =
                            (0..sc.size()).map(|r| payload(v + r, m)).collect();
                        coll::reduce_scatter(proc, &sc, 0, parts)
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
