//! Collective-schedule benchmarks: host wall time of executing each
//! Table 1 collective on the simulated machine, one-port vs multi-port.
//! (The *virtual* costs are validated exactly in the test suites; these
//! benches track the simulator's own overhead.)

use cubemm_bench::microbench::{BenchmarkId, Criterion};
use cubemm_bench::{criterion_group, criterion_main};
use cubemm_collectives as coll;
use cubemm_simnet::{CostParams, Machine, Payload, PortModel, Proc, RunOutcome};
use cubemm_topology::Subcube;

const COST: CostParams = CostParams { ts: 1.0, tw: 1.0 };

fn payload(rank: usize, m: usize) -> Payload {
    (0..m).map(|x| (rank + x) as f64).collect()
}

/// Boots a healthy `p`-node machine and runs `program` on every node.
fn run<O, F, Fut>(p: usize, port: PortModel, program: F) -> RunOutcome<O>
where
    O: Send,
    F: Fn(Proc, ()) -> Fut + Sync,
    Fut: std::future::Future<Output = O>,
{
    #[allow(
        clippy::expect_used,
        reason = "fixed, valid bench machines; a failure is a bench bug"
    )]
    Machine::builder(p)
        .port(port)
        .cost(COST)
        .build()
        .expect("valid bench machine")
        .run(vec![(); p], program)
        .expect("healthy bench run")
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_sim");
    group.sample_size(20);
    let p = 16usize;
    let m = 256usize;
    for port in [PortModel::OnePort, PortModel::MultiPort] {
        group.bench_with_input(BenchmarkId::new("bcast", port), &port, |bench, &port| {
            bench.iter(|| {
                run(p, port, |mut proc, ()| async move {
                    let sc = Subcube::whole(proc.dim());
                    let data = (sc.rank_of(proc.id()) == 0).then(|| payload(0, m));
                    coll::bcast(&mut proc, &sc, 0, 0, data, m).await
                })
            })
        });
        group.bench_with_input(
            BenchmarkId::new("allgather", port),
            &port,
            |bench, &port| {
                bench.iter(|| {
                    run(p, port, |mut proc, ()| async move {
                        let sc = Subcube::whole(proc.dim());
                        let v = sc.rank_of(proc.id());
                        coll::allgather(&mut proc, &sc, 0, payload(v, m)).await
                    })
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("alltoall", port), &port, |bench, &port| {
            bench.iter(|| {
                run(p, port, |mut proc, ()| async move {
                    let sc = Subcube::whole(proc.dim());
                    let v = sc.rank_of(proc.id());
                    let parts: Vec<Payload> = (0..sc.size()).map(|r| payload(v + r, m)).collect();
                    coll::alltoall_personalized(&mut proc, &sc, 0, parts).await
                })
            })
        });
        group.bench_with_input(
            BenchmarkId::new("reduce_scatter", port),
            &port,
            |bench, &port| {
                bench.iter(|| {
                    run(p, port, |mut proc, ()| async move {
                        let sc = Subcube::whole(proc.dim());
                        let v = sc.rank_of(proc.id());
                        let parts: Vec<Payload> =
                            (0..sc.size()).map(|r| payload(v + r, m)).collect();
                        coll::reduce_scatter(&mut proc, &sc, 0, parts).await
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
