//! Small bit-manipulation helpers used throughout the workspace.

/// Returns `true` iff `x` is a positive power of two.
#[inline]
pub fn is_pow2(x: usize) -> bool {
    x != 0 && x & (x - 1) == 0
}

/// Returns `log2(x)` when `x` is an exact power of two, `None` otherwise.
#[inline]
pub fn log2_exact(x: usize) -> Option<u32> {
    if is_pow2(x) {
        Some(x.trailing_zeros())
    } else {
        None
    }
}

/// Deposits the low bits of `value` into the bit positions listed in
/// `dims` (lowest-order source bit goes to `dims[0]`, and so on).
///
/// This is the software equivalent of the PDEP instruction restricted to a
/// list of bit positions; it converts a *rank within a subcube* into the
/// subcube-relative part of a hypercube node label.
#[inline]
pub fn deposit_bits(value: usize, dims: &[u32]) -> usize {
    let mut out = 0usize;
    for (i, &d) in dims.iter().enumerate() {
        if (value >> i) & 1 == 1 {
            out |= 1usize << d;
        }
    }
    out
}

/// Extracts the bits of `label` at the positions listed in `dims` and packs
/// them into the low bits of the result (inverse of [`deposit_bits`]).
#[inline]
pub fn extract_bits(label: usize, dims: &[u32]) -> usize {
    let mut out = 0usize;
    for (i, &d) in dims.iter().enumerate() {
        if (label >> d) & 1 == 1 {
            out |= 1usize << i;
        }
    }
    out
}

/// Hamming distance between two node labels: the number of hypercube hops
/// on a shortest path between them.
#[inline]
pub fn hamming(a: usize, b: usize) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_detection() {
        assert!(is_pow2(1));
        assert!(is_pow2(2));
        assert!(is_pow2(1024));
        assert!(!is_pow2(0));
        assert!(!is_pow2(3));
        assert!(!is_pow2(1023));
    }

    #[test]
    fn log2_exact_values() {
        assert_eq!(log2_exact(1), Some(0));
        assert_eq!(log2_exact(8), Some(3));
        assert_eq!(log2_exact(12), None);
        assert_eq!(log2_exact(0), None);
    }

    #[test]
    fn deposit_extract_roundtrip() {
        let dims = [1, 4, 5, 9];
        for v in 0..16usize {
            let lab = deposit_bits(v, &dims);
            assert_eq!(extract_bits(lab, &dims), v);
            // Only the listed positions may be set.
            let mask: usize = dims.iter().map(|&d| 1usize << d).sum();
            assert_eq!(lab & !mask, 0);
        }
    }

    #[test]
    fn hamming_examples() {
        assert_eq!(hamming(0, 0), 0);
        assert_eq!(hamming(0b1010, 0b0110), 2);
        assert_eq!(hamming(0, usize::MAX), usize::BITS);
    }
}
