//! Binary-reflected Gray codes (BRGC).
//!
//! The BRGC maps the integers `0..2^k` onto hypercube node labels so that
//! consecutive integers (including the wrap-around `2^k - 1 → 0`) map to
//! *adjacent* hypercube nodes. This is the classical Hamiltonian-cycle
//! embedding of a ring into a hypercube, and is what lets Cannon-style
//! "shift by one position along the row" steps cost a single hop on a
//! hypercube (paper §3.2, §3.3).

/// The binary-reflected Gray code of `i`.
///
/// ```
/// use cubemm_topology::{gray, gray_inverse};
/// assert_eq!(gray(5), 0b111);
/// assert_eq!(gray_inverse(gray(5)), 5);
/// // Consecutive codes differ in exactly one bit (ring embedding).
/// assert_eq!((gray(6) ^ gray(7)).count_ones(), 1);
/// ```
#[inline]
pub fn gray(i: usize) -> usize {
    i ^ (i >> 1)
}

/// The inverse of [`gray`]: returns `i` such that `gray(i) == g`.
#[inline]
pub fn gray_inverse(g: usize) -> usize {
    let mut i = g;
    let mut shift = 1u32;
    while shift < usize::BITS {
        i ^= i >> shift;
        shift <<= 1;
    }
    i
}

/// The bit position in which `gray(k)` and `gray(k + 1)` differ.
///
/// For the BRGC this is the ruler function `ctz(k + 1)`. The
/// Ho–Johnsson–Edelman algorithm's schedule `g_{l,k}` (paper, Algorithm 1)
/// is this value rotated by `l` within the subcube dimension count.
#[inline]
pub fn gray_delta_bit(k: usize) -> u32 {
    (k + 1).trailing_zeros()
}

/// The schedule bit `g_{l,k}` of the Ho–Johnsson–Edelman algorithm: the
/// position in which the `d`-bit Gray codes, rotated left by `l` bits, of
/// `k` and `k + 1` differ (indices taken modulo `2^d`).
#[inline]
pub fn hje_schedule_bit(l: u32, k: usize, d: u32) -> u32 {
    debug_assert!(d > 0);
    let q = 1usize << d;
    let k = k % q;
    // On the wrap-around step the codes differ in the top bit.
    let base = if k == q - 1 { d - 1 } else { gray_delta_bit(k) };
    // Rotating the code left by `l` moves the differing bit up by `l`
    // (mod d).
    (base + l) % d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_small_values() {
        let expected = [0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100];
        for (i, &g) in expected.iter().enumerate() {
            assert_eq!(gray(i), g, "gray({i})");
        }
    }

    #[test]
    fn gray_inverse_roundtrip() {
        for i in 0..4096usize {
            assert_eq!(gray_inverse(gray(i)), i);
            assert_eq!(gray(gray_inverse(i)), i);
        }
    }

    #[test]
    fn consecutive_codes_are_adjacent() {
        let q = 64usize;
        for i in 0..q {
            let a = gray(i);
            let b = gray((i + 1) % q);
            assert_eq!(
                (a ^ b).count_ones(),
                1,
                "gray({i}) vs gray({})",
                (i + 1) % q
            );
        }
    }

    #[test]
    fn delta_bit_matches_codes() {
        for k in 0..1000usize {
            let d = gray_delta_bit(k);
            assert_eq!(gray(k) ^ gray(k + 1), 1usize << d);
        }
    }

    #[test]
    fn hje_schedule_stays_in_range() {
        let d = 3;
        for l in 0..d {
            for k in 0..(1usize << d) {
                assert!(hje_schedule_bit(l, k, d) < d);
            }
        }
    }
}
