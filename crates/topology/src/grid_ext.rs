//! Extended grid embeddings for the paper's combination and flat-grid
//! variants.
//!
//! * [`SupernodeGrid`] — the §3.5 DNS+Cannon view: the hypercube as a
//!   `∛s × ∛s × ∛s` grid of *supernodes*, each supernode a `√r × √r`
//!   processor mesh (`p = s·r`).
//! * [`FlatGrid3`] — the §4.2.2 view: a `g × g × g²` grid (`p = g⁴`,
//!   i.e. `g = p^{1/4}` and a `√p`-deep z axis), which extends the 3-D
//!   All algorithm's applicability to `p ≤ n²`.

use crate::subcube::Subcube;
use crate::TopologyError;

/// A `∛s × ∛s × ∛s` grid of `√r × √r` supernode meshes embedded in a
/// `p = s·r` node hypercube.
///
/// Label layout: intra-mesh coordinates `(x, y)` in the low `log r`
/// bits, supernode coordinates `(i, j, k)` in the high `log s` bits —
/// so every supernode is a subcube, every intra-mesh line is a subcube,
/// and every supernode-grid line at a fixed intra position is a subcube.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupernodeGrid {
    mesh_bits: u32,  // per intra axis (√r = 2^mesh_bits)
    super_bits: u32, // per super axis (∛s = 2^super_bits)
}

impl SupernodeGrid {
    /// Builds the embedding for `p = s·r` with `r = 4^mesh_bits`
    /// processors per supernode mesh.
    pub fn new(p: usize, mesh_bits: u32) -> Result<Self, TopologyError> {
        let dim = crate::bits::log2_exact(p).ok_or(TopologyError::NotPowerOfTwo(p))?;
        let intra = 2 * mesh_bits;
        if dim < intra || (dim - intra) % 3 != 0 {
            return Err(TopologyError::IndivisibleDimension { dim, divisor: 3 });
        }
        Ok(SupernodeGrid {
            mesh_bits,
            super_bits: (dim - intra) / 3,
        })
    }

    /// All legal `mesh_bits` values for a `p`-node machine (including 0,
    /// which degenerates to the plain DNS grid).
    pub fn splits(p: usize) -> Vec<u32> {
        let Some(dim) = crate::bits::log2_exact(p) else {
            return Vec::new();
        };
        (0..=dim / 2).filter(|mb| (dim - 2 * mb) % 3 == 0).collect()
    }

    /// Mesh side `√r`.
    #[inline]
    pub fn mesh_q(&self) -> usize {
        1usize << self.mesh_bits
    }

    /// Supernode-grid side `∛s`.
    #[inline]
    pub fn super_q(&self) -> usize {
        1usize << self.super_bits
    }

    /// Processors per supernode, `r`.
    #[inline]
    pub fn r(&self) -> usize {
        1usize << (2 * self.mesh_bits)
    }

    /// Supernode count, `s`.
    #[inline]
    pub fn s(&self) -> usize {
        1usize << (3 * self.super_bits)
    }

    /// Total processors `p = s·r`.
    #[inline]
    pub fn p(&self) -> usize {
        self.r() * self.s()
    }

    /// Node label of intra position `(x, y)` in supernode `(i, j, k)`.
    #[inline]
    pub fn node(&self, x: usize, y: usize, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(x < self.mesh_q() && y < self.mesh_q());
        debug_assert!(i < self.super_q() && j < self.super_q() && k < self.super_q());
        let mb = self.mesh_bits;
        let sb = self.super_bits;
        x | (y << mb) | (i << (2 * mb)) | (j << (2 * mb + sb)) | (k << (2 * mb + 2 * sb))
    }

    /// Inverse of [`SupernodeGrid::node`]: `(x, y, i, j, k)`.
    #[inline]
    pub fn coords(&self, label: usize) -> (usize, usize, usize, usize, usize) {
        let mq = self.mesh_q() - 1;
        let sq = self.super_q() - 1;
        let mb = self.mesh_bits;
        let sb = self.super_bits;
        (
            label & mq,
            (label >> mb) & mq,
            (label >> (2 * mb)) & sq,
            (label >> (2 * mb + sb)) & sq,
            (label >> (2 * mb + 2 * sb)) & sq,
        )
    }

    /// Supernode-grid y line through this label (varying `j`), at fixed
    /// intra position — a `∛s`-node subcube.
    pub fn super_y_line(&self, label: usize) -> Subcube {
        let base = 2 * self.mesh_bits + self.super_bits;
        Subcube::new(label, (base..base + self.super_bits).collect())
    }

    /// Supernode-grid x line (varying `i`).
    pub fn super_x_line(&self, label: usize) -> Subcube {
        let base = 2 * self.mesh_bits;
        Subcube::new(label, (base..base + self.super_bits).collect())
    }

    /// Supernode-grid z line (varying `k`).
    pub fn super_z_line(&self, label: usize) -> Subcube {
        let base = 2 * self.mesh_bits + 2 * self.super_bits;
        Subcube::new(label, (base..base + self.super_bits).collect())
    }
}

/// A `g × g × g²` virtual grid embedded in a `p = g⁴` node hypercube
/// (the paper's `p^{1/4} × p^{1/4} × √p` flat mapping, §4.2.2).
///
/// Axis layout: `i` (x) in bits `[0, b)`, `j` (y) in `[b, 2b)`, `k` (z)
/// in `[2b, 4b)` with `b = log g`. The z coordinate's low `b` bits
/// (`k mod g`) form their own subcube, which the flat 3-D All algorithm
/// uses to route B row groups to the plane that consumes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatGrid3 {
    bits: u32, // b = log g
}

impl FlatGrid3 {
    /// Builds the embedding for `p = g⁴` (hypercube dimension divisible
    /// by 4).
    pub fn new(p: usize) -> Result<Self, TopologyError> {
        let dim = crate::bits::log2_exact(p).ok_or(TopologyError::NotPowerOfTwo(p))?;
        if dim % 4 != 0 {
            return Err(TopologyError::IndivisibleDimension { dim, divisor: 4 });
        }
        Ok(FlatGrid3 { bits: dim / 4 })
    }

    /// Short side `g = p^{1/4}`.
    #[inline]
    pub fn g(&self) -> usize {
        1usize << self.bits
    }

    /// Deep side `h = g² = √p`.
    #[inline]
    pub fn h(&self) -> usize {
        1usize << (2 * self.bits)
    }

    /// Total processors `p = g⁴`.
    #[inline]
    pub fn p(&self) -> usize {
        1usize << (4 * self.bits)
    }

    /// Node label of `p_{i,j,k}` (`i, j < g`, `k < g²`).
    #[inline]
    pub fn node(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.g() && j < self.g() && k < self.h());
        i | (j << self.bits) | (k << (2 * self.bits))
    }

    /// Inverse of [`FlatGrid3::node`].
    #[inline]
    pub fn coords(&self, label: usize) -> (usize, usize, usize) {
        let g = self.g() - 1;
        let h = self.h() - 1;
        (
            label & g,
            (label >> self.bits) & g,
            (label >> (2 * self.bits)) & h,
        )
    }

    /// x line `p_{*,j,k}` (g nodes).
    pub fn x_line(&self, label: usize) -> Subcube {
        Subcube::new(label, (0..self.bits).collect())
    }

    /// y line `p_{i,*,k}` (g nodes).
    pub fn y_line(&self, label: usize) -> Subcube {
        Subcube::new(label, (self.bits..2 * self.bits).collect())
    }

    /// The z sub-line varying only `k mod g` (g nodes): the "low" z
    /// subcube used for the final broadcast of the flat 3-D All scheme.
    pub fn z_low_line(&self, label: usize) -> Subcube {
        Subcube::new(label, (2 * self.bits..3 * self.bits).collect())
    }

    /// The z sub-line varying only `k div g` (g nodes): the "high" z
    /// subcube over which matching B row-group holders all-gather.
    pub fn z_high_line(&self, label: usize) -> Subcube {
        Subcube::new(label, (3 * self.bits..4 * self.bits).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supernode_grid_shapes() {
        // p = 32 = r(4) · s(8): mesh_bits 1, super_bits 1.
        let g = SupernodeGrid::new(32, 1).unwrap();
        assert_eq!(g.r(), 4);
        assert_eq!(g.s(), 8);
        assert_eq!(g.p(), 32);
        // dim 5 with mesh_bits 0 → 5 % 3 != 0 rejected.
        assert!(SupernodeGrid::new(32, 0).is_err());
        assert_eq!(SupernodeGrid::splits(32), vec![1]);
        assert_eq!(SupernodeGrid::splits(64), vec![0, 3]);
        assert_eq!(SupernodeGrid::splits(512), vec![0, 3]);
    }

    #[test]
    fn supernode_label_roundtrip() {
        let g = SupernodeGrid::new(256, 1).unwrap(); // r=4, s=64
        let mut seen = vec![false; 256];
        for x in 0..g.mesh_q() {
            for y in 0..g.mesh_q() {
                for i in 0..g.super_q() {
                    for j in 0..g.super_q() {
                        for k in 0..g.super_q() {
                            let l = g.node(x, y, i, j, k);
                            assert_eq!(g.coords(l), (x, y, i, j, k));
                            assert!(!seen[l]);
                            seen[l] = true;
                        }
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn supernode_lines_are_subcubes_with_coordinate_rank() {
        let g = SupernodeGrid::new(256, 1).unwrap();
        let l = g.node(1, 0, 2, 1, 3);
        assert_eq!(g.super_y_line(l).rank_of(l), 1);
        assert_eq!(g.super_x_line(l).rank_of(l), 2);
        assert_eq!(g.super_z_line(l).rank_of(l), 3);
        assert_eq!(g.super_y_line(l).size(), 4);
    }

    #[test]
    fn flat_grid_shapes() {
        assert!(FlatGrid3::new(8).is_err());
        let g = FlatGrid3::new(16).unwrap();
        assert_eq!((g.g(), g.h()), (2, 4));
        let g = FlatGrid3::new(256).unwrap();
        assert_eq!((g.g(), g.h()), (4, 16));
    }

    #[test]
    fn flat_grid_label_roundtrip_and_lines() {
        let g = FlatGrid3::new(256).unwrap();
        for i in 0..g.g() {
            for j in 0..g.g() {
                for k in 0..g.h() {
                    let l = g.node(i, j, k);
                    assert_eq!(g.coords(l), (i, j, k));
                    assert_eq!(g.x_line(l).rank_of(l), i);
                    assert_eq!(g.y_line(l).rank_of(l), j);
                    assert_eq!(g.z_low_line(l).rank_of(l), k % g.g());
                    assert_eq!(g.z_high_line(l).rank_of(l), k / g.g());
                }
            }
        }
    }

    #[test]
    fn flat_grid_z_sublines_partition_the_z_axis() {
        let g = FlatGrid3::new(16).unwrap();
        let l = g.node(1, 0, 3);
        let low: Vec<usize> = g.z_low_line(l).members().collect();
        let high: Vec<usize> = g.z_high_line(l).members().collect();
        // low varies k in {2,3} (k_hi=1 fixed), high varies k in {1,3}.
        assert_eq!(low.len(), 2);
        assert_eq!(high.len(), 2);
        assert!(low.contains(&l) && high.contains(&l));
    }
}
