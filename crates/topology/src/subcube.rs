//! Subcube addressing.
//!
//! A *subcube* of a hypercube is the set of nodes obtained by fixing some
//! bits of the label and letting the others range freely. Every
//! one-dimensional chain of a virtual grid embedded in a hypercube (a grid
//! row, column, or fibre) is such a subcube, which is why the collective
//! operations of Johnsson & Ho apply along grid lines (paper §2).

use crate::bits::{deposit_bits, extract_bits};

/// A subcube described by a fixed `base` label and an ordered list of free
/// dimensions.
///
/// The *rank* of a member is the integer formed by its bits in the free
/// dimensions (`dims[0]` is rank bit 0). Ranks run `0..size()`.
///
/// ```
/// use cubemm_topology::Subcube;
/// // The "row" {4, 5, 6, 7} of a 3-cube: dims {0, 1} free, bit 2 set.
/// let sc = Subcube::new(0b100, vec![0, 1]);
/// assert_eq!(sc.size(), 4);
/// assert_eq!(sc.member(3), 0b111);
/// assert_eq!(sc.rank_of(0b110), 2);
/// assert!(!sc.contains(0b010));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subcube {
    base: usize,
    dims: Vec<u32>,
}

impl Subcube {
    /// Creates a subcube from a base label and free dimensions.
    ///
    /// Bits of `base` in free dimensions are cleared, so any member label
    /// may serve as the base.
    pub fn new(base: usize, dims: Vec<u32>) -> Self {
        let mask: usize = dims.iter().map(|&d| 1usize << d).sum();
        Subcube {
            base: base & !mask,
            dims,
        }
    }

    /// The whole hypercube of dimension `d` as a subcube.
    pub fn whole(d: u32) -> Self {
        Subcube::new(0, (0..d).collect())
    }

    /// Number of free dimensions.
    #[inline]
    pub fn dim(&self) -> u32 {
        self.dims.len() as u32
    }

    /// Number of member nodes (`2^dim`).
    #[inline]
    pub fn size(&self) -> usize {
        1usize << self.dims.len()
    }

    /// The free dimensions, in rank-bit order.
    #[inline]
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// The fixed part of the label.
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    /// The node label of the member with the given rank.
    #[inline]
    pub fn member(&self, rank: usize) -> usize {
        debug_assert!(rank < self.size());
        self.base | deposit_bits(rank, &self.dims)
    }

    /// The rank of a node within the subcube. The node must be a member.
    #[inline]
    pub fn rank_of(&self, node: usize) -> usize {
        debug_assert!(self.contains(node), "node {node} not in subcube");
        extract_bits(node, &self.dims)
    }

    /// Whether `node` belongs to this subcube.
    #[inline]
    pub fn contains(&self, node: usize) -> bool {
        let mask: usize = self.dims.iter().map(|&d| 1usize << d).sum();
        node & !mask == self.base
    }

    /// Iterates over member labels in rank order.
    pub fn members(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.size()).map(move |r| self.member(r))
    }

    /// A subcube identical to this one but with the free-dimension order
    /// rotated left by `r` (rank bit 0 becomes `dims[r]`). Used by the
    /// rotated-spanning-tree multi-port schedules.
    pub fn rotated(&self, r: u32) -> Self {
        let n = self.dims.len();
        let r = (r as usize) % n.max(1);
        let mut dims = Vec::with_capacity(n);
        dims.extend_from_slice(&self.dims[r..]);
        dims.extend_from_slice(&self.dims[..r]);
        Subcube {
            base: self.base,
            dims,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_cube_members() {
        let sc = Subcube::whole(3);
        let got: Vec<usize> = sc.members().collect();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn member_rank_roundtrip() {
        let sc = Subcube::new(0b100000, vec![1, 3, 4]);
        assert_eq!(sc.size(), 8);
        for r in 0..sc.size() {
            let node = sc.member(r);
            assert!(sc.contains(node));
            assert_eq!(sc.rank_of(node), r);
        }
    }

    #[test]
    fn base_bits_in_free_dims_cleared() {
        let sc = Subcube::new(0b1111, vec![0, 1]);
        assert_eq!(sc.base(), 0b1100);
        assert!(sc.contains(0b1101));
        assert!(!sc.contains(0b0101));
    }

    #[test]
    fn adjacent_ranks_are_hypercube_neighbors_via_gray() {
        use crate::gray::gray;
        let sc = Subcube::new(0, vec![2, 5, 7]);
        let q = sc.size();
        for r in 0..q {
            let a = sc.member(gray(r));
            let b = sc.member(gray((r + 1) % q));
            assert_eq!((a ^ b).count_ones(), 1);
        }
    }

    #[test]
    fn rotation_preserves_membership() {
        let sc = Subcube::new(0b1000, vec![0, 1, 2]);
        for r in 0..3 {
            let rot = sc.rotated(r);
            let mut a: Vec<usize> = sc.members().collect();
            let mut b: Vec<usize> = rot.members().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }
}
