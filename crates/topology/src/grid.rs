//! Virtual 2-D and 3-D grid embeddings into a hypercube.
//!
//! All the matrix-multiplication algorithms in the paper run on a virtual
//! `√p × √p` or `∛p × ∛p × ∛p` grid of processors embedded in a
//! `p`-processor hypercube (paper §2). We assign each grid axis a disjoint
//! group of label bits, so that:
//!
//! * every grid line (row, column, fibre) is a subcube, hence the optimal
//!   hypercube collectives apply along it, and
//! * XOR-shifts of a single coordinate bit are single-hop neighbor sends,
//!   which is how Cannon-style circular shifts are realised on hypercubes
//!   (the XOR/Gray-sequence form, see `cubemm-core`).
//!
//! Coordinates map to label bits *in binary* (coordinate value = packed
//! label bits). Grid coordinate order follows the paper: a processor
//! `p_{i,j,k}` has `i` on the x axis, `j` on the y axis, `k` on the z axis.

use crate::subcube::Subcube;
use crate::TopologyError;

/// A `q × q` virtual grid embedded in a `p = q²` node hypercube.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2 {
    bits: u32,
}

impl Grid2 {
    /// Builds the embedding for a `p`-node hypercube (`p` must be an even
    /// power of two).
    pub fn new(p: usize) -> Result<Self, TopologyError> {
        let dim = crate::bits::log2_exact(p).ok_or(TopologyError::NotPowerOfTwo(p))?;
        if dim % 2 != 0 {
            return Err(TopologyError::IndivisibleDimension { dim, divisor: 2 });
        }
        Ok(Grid2 { bits: dim / 2 })
    }

    /// Side length `q = √p`.
    #[inline]
    pub fn q(&self) -> usize {
        1usize << self.bits
    }

    /// Total processors `p = q²`.
    #[inline]
    pub fn p(&self) -> usize {
        1usize << (2 * self.bits)
    }

    /// Label bits per axis (`log q`).
    #[inline]
    pub fn axis_bits(&self) -> u32 {
        self.bits
    }

    /// Node label of grid processor `p_{i,j}` (row `i`, column `j`).
    ///
    /// Row index `i` occupies the low bit group, column index `j` the high
    /// group; the choice is arbitrary but fixed.
    #[inline]
    pub fn node(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.q() && j < self.q());
        i | (j << self.bits)
    }

    /// Inverse of [`Grid2::node`].
    #[inline]
    pub fn coords(&self, node: usize) -> (usize, usize) {
        let mask = self.q() - 1;
        (node & mask, (node >> self.bits) & mask)
    }

    /// The subcube spanned by row `i` (all `p_{i,*}`, varying `j`).
    pub fn row(&self, i: usize) -> Subcube {
        Subcube::new(self.node(i, 0), (self.bits..2 * self.bits).collect())
    }

    /// The subcube spanned by column `j` (all `p_{*,j}`, varying `i`).
    pub fn col(&self, j: usize) -> Subcube {
        Subcube::new(self.node(0, j), (0..self.bits).collect())
    }
}

/// A `q × q × q` virtual grid embedded in a `p = q³` node hypercube.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid3 {
    bits: u32,
}

impl Grid3 {
    /// Builds the embedding for a `p`-node hypercube (`p` must be a power
    /// of two whose exponent is divisible by 3).
    pub fn new(p: usize) -> Result<Self, TopologyError> {
        let dim = crate::bits::log2_exact(p).ok_or(TopologyError::NotPowerOfTwo(p))?;
        if dim % 3 != 0 {
            return Err(TopologyError::IndivisibleDimension { dim, divisor: 3 });
        }
        Ok(Grid3 { bits: dim / 3 })
    }

    /// Side length `q = ∛p`.
    #[inline]
    pub fn q(&self) -> usize {
        1usize << self.bits
    }

    /// Total processors `p = q³`.
    #[inline]
    pub fn p(&self) -> usize {
        1usize << (3 * self.bits)
    }

    /// Label bits per axis (`log q`).
    #[inline]
    pub fn axis_bits(&self) -> u32 {
        self.bits
    }

    /// Node label of grid processor `p_{i,j,k}` (x = `i`, y = `j`, z = `k`).
    #[inline]
    pub fn node(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.q() && j < self.q() && k < self.q());
        i | (j << self.bits) | (k << (2 * self.bits))
    }

    /// Inverse of [`Grid3::node`].
    #[inline]
    pub fn coords(&self, node: usize) -> (usize, usize, usize) {
        let mask = self.q() - 1;
        (
            node & mask,
            (node >> self.bits) & mask,
            (node >> (2 * self.bits)) & mask,
        )
    }

    /// Subcube of the x line through `p_{*,j,k}` (varying `i`).
    pub fn x_line(&self, j: usize, k: usize) -> Subcube {
        Subcube::new(self.node(0, j, k), (0..self.bits).collect())
    }

    /// Subcube of the y line through `p_{i,*,k}` (varying `j`).
    pub fn y_line(&self, i: usize, k: usize) -> Subcube {
        Subcube::new(self.node(i, 0, k), (self.bits..2 * self.bits).collect())
    }

    /// Subcube of the z line through `p_{i,j,*}` (varying `k`).
    pub fn z_line(&self, i: usize, j: usize) -> Subcube {
        Subcube::new(self.node(i, j, 0), (2 * self.bits..3 * self.bits).collect())
    }

    /// Subcube of the x–y plane at height `z = k` (used by Berntsen's
    /// subcube decomposition and the DNS algorithm's base plane).
    pub fn xy_plane(&self, k: usize) -> Subcube {
        Subcube::new(self.node(0, 0, k), (0..2 * self.bits).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2_shape_checks() {
        assert!(Grid2::new(16).is_ok());
        assert!(Grid2::new(64).is_ok());
        assert_eq!(
            Grid2::new(8),
            Err(TopologyError::IndivisibleDimension { dim: 3, divisor: 2 })
        );
        assert_eq!(Grid2::new(12), Err(TopologyError::NotPowerOfTwo(12)));
    }

    #[test]
    fn grid2_node_coords_roundtrip() {
        let g = Grid2::new(64).unwrap();
        for i in 0..g.q() {
            for j in 0..g.q() {
                assert_eq!(g.coords(g.node(i, j)), (i, j));
            }
        }
    }

    #[test]
    fn grid2_labels_are_a_bijection() {
        let g = Grid2::new(16).unwrap();
        let mut seen = vec![false; g.p()];
        for i in 0..g.q() {
            for j in 0..g.q() {
                let n = g.node(i, j);
                assert!(!seen[n]);
                seen[n] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn grid2_lines_are_subcubes_with_rank_equal_to_coordinate() {
        let g = Grid2::new(64).unwrap();
        for i in 0..g.q() {
            let row = g.row(i);
            assert_eq!(row.size(), g.q());
            for j in 0..g.q() {
                assert_eq!(row.rank_of(g.node(i, j)), j);
            }
        }
        for j in 0..g.q() {
            let col = g.col(j);
            for i in 0..g.q() {
                assert_eq!(col.rank_of(g.node(i, j)), i);
            }
        }
    }

    #[test]
    fn grid3_shape_checks() {
        assert!(Grid3::new(8).is_ok());
        assert!(Grid3::new(512).is_ok());
        assert_eq!(
            Grid3::new(16),
            Err(TopologyError::IndivisibleDimension { dim: 4, divisor: 3 })
        );
    }

    #[test]
    fn grid3_node_coords_roundtrip() {
        let g = Grid3::new(64).unwrap();
        for i in 0..g.q() {
            for j in 0..g.q() {
                for k in 0..g.q() {
                    assert_eq!(g.coords(g.node(i, j, k)), (i, j, k));
                }
            }
        }
    }

    #[test]
    fn grid3_lines_rank_matches_varying_coordinate() {
        let g = Grid3::new(512).unwrap();
        let (i, j, k) = (3, 5, 6);
        assert_eq!(g.x_line(j, k).rank_of(g.node(i, j, k)), i);
        assert_eq!(g.y_line(i, k).rank_of(g.node(i, j, k)), j);
        assert_eq!(g.z_line(i, j).rank_of(g.node(i, j, k)), k);
    }

    #[test]
    fn grid3_xy_plane_contains_exactly_the_plane() {
        let g = Grid3::new(64).unwrap();
        let plane = g.xy_plane(2);
        assert_eq!(plane.size(), g.q() * g.q());
        for i in 0..g.q() {
            for j in 0..g.q() {
                assert!(plane.contains(g.node(i, j, 2)));
                assert!(!plane.contains(g.node(i, j, 3)));
            }
        }
    }

    #[test]
    fn single_bit_coordinate_xor_is_single_hop() {
        let g = Grid3::new(512).unwrap();
        let (i, j, k) = (5, 2, 7);
        let n = g.node(i, j, k);
        for b in 0..g.axis_bits() {
            let m = g.node(i ^ (1 << b), j, k);
            assert_eq!((n ^ m).count_ones(), 1);
        }
    }
}
