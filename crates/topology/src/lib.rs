//! Hypercube topology mathematics for the cubemm workspace.
//!
//! A *d*-dimensional (binary) hypercube has `p = 2^d` nodes labelled
//! `0..p`; two nodes are adjacent iff their labels differ in exactly one
//! bit. This crate provides the pure, machine-independent math the rest of
//! the workspace builds on:
//!
//! * bit utilities ([`bits`]),
//! * binary-reflected Gray codes ([`gray()`]) — the Hamiltonian-cycle
//!   embedding used for ring shifts (Cannon's algorithm),
//! * subcube addressing ([`subcube`]) — every row/column/fibre of a virtual
//!   grid embedded in a hypercube is itself a smaller hypercube (paper §2),
//! * 2-D and 3-D virtual grid embeddings ([`grid`]).
//!
//! Nothing here knows about messages or matrices; it is shared by the
//! simulator, the collectives library, and the algorithm crate.

pub mod bits;
pub mod gray;
pub mod grid;
pub mod grid_ext;
pub mod subcube;

pub use bits::{is_pow2, log2_exact};
pub use gray::{gray, gray_delta_bit, gray_inverse};
pub use grid::{Grid2, Grid3};
pub use grid_ext::{FlatGrid3, SupernodeGrid};
pub use subcube::Subcube;

/// Errors produced when a requested topology shape is impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The node count is not a power of two.
    NotPowerOfTwo(usize),
    /// The hypercube dimension is not divisible as required by the target
    /// virtual grid (e.g. a square 2-D grid needs an even dimension).
    IndivisibleDimension {
        /// total hypercube dimension
        dim: u32,
        /// required divisor (2 for square grids, 3 for cubic grids)
        divisor: u32,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NotPowerOfTwo(p) => {
                write!(f, "node count {p} is not a power of two")
            }
            TopologyError::IndivisibleDimension { dim, divisor } => write!(
                f,
                "hypercube dimension {dim} is not divisible by {divisor} as \
                 required by the virtual grid"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}
