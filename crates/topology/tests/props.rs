//! Deterministic property sweeps for the topology crate.
//!
//! These were originally proptest strategies; they are now seeded,
//! reproducible sweeps so the workspace needs no external crates and a
//! failure is immediately reproducible from the printed case.

use cubemm_topology::bits::{deposit_bits, extract_bits, hamming};
use cubemm_topology::{gray, gray_inverse, Grid2, Grid3, Subcube};

/// SplitMix64 — the workspace's standard in-tree generator.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn gray_is_a_bijection() {
    for i in (0..(1usize << 20)).step_by(89).chain([0, 1, (1 << 20) - 1]) {
        assert_eq!(gray_inverse(gray(i)), i, "i = {i}");
    }
}

#[test]
fn gray_is_gf2_linear() {
    // Linearity over GF(2) is what makes XOR-shifts commute with the
    // code; Cannon's hypercube form relies on it.
    let mut s = 1u64;
    for _ in 0..512 {
        let a = mix(&mut s) as usize & 0xFFFF;
        let b = mix(&mut s) as usize & 0xFFFF;
        assert_eq!(gray(a ^ b), gray(a) ^ gray(b), "a = {a}, b = {b}");
    }
}

#[test]
fn gray_neighbors_on_ring() {
    for bits in 1u32..12 {
        let q = 1usize << bits;
        for i in 0..q.min(512) {
            let j = (i + 1) % q;
            assert_eq!(hamming(gray(i) % q, gray(j) % q), 1, "bits {bits}, i {i}");
        }
    }
}

#[test]
fn deposit_extract_inverse() {
    let mut lcg = 7u64;
    for v in 0usize..256 {
        // Pick 8 distinct dimensions pseudo-randomly from the seed.
        let seed = mix(&mut lcg);
        let mut dims: Vec<u32> = (0..32).collect();
        let mut s = seed;
        for i in (1..dims.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            dims.swap(i, j);
        }
        dims.truncate(8);
        let lab = deposit_bits(v, &dims);
        assert_eq!(extract_bits(lab, &dims), v, "v = {v}, dims = {dims:?}");
    }
}

#[test]
fn subcube_rank_member_roundtrip() {
    let mut s = 11u64;
    for dim in 1u32..10 {
        for _ in 0..16 {
            let base = mix(&mut s) as usize & ((1 << 10) - 1);
            let sc = Subcube::new(base, (0..dim).collect());
            let rank = mix(&mut s) as usize % sc.size();
            assert_eq!(sc.rank_of(sc.member(rank)), rank, "dim {dim}, base {base}");
        }
    }
}

#[test]
fn grid2_row_col_intersect_in_one_node() {
    for bits in 1u32..6 {
        let g = Grid2::new(1usize << (2 * bits)).unwrap();
        let q = g.q();
        for seed in (0..q * q).step_by(1 + q / 3) {
            let i = seed % q;
            let j = (seed / q) % q;
            let row = g.row(i);
            let col = g.col(j);
            let both: Vec<usize> = row.members().filter(|&n| col.contains(n)).collect();
            assert_eq!(both, vec![g.node(i, j)], "bits {bits}, i {i}, j {j}");
        }
    }
}

#[test]
fn grid3_lines_are_orthogonal() {
    for bits in 1u32..4 {
        let g = Grid3::new(1usize << (3 * bits)).unwrap();
        let q = g.q();
        for seed in (0..q * q * q).step_by(1 + q * q / 2) {
            let (i, j, k) = (seed % q, (seed / q) % q, (seed / q / q) % q);
            let x = g.x_line(j, k);
            let y = g.y_line(i, k);
            let z = g.z_line(i, j);
            let node = g.node(i, j, k);
            assert!(x.contains(node) && y.contains(node) && z.contains(node));
            // Pairwise intersections are exactly the node itself.
            for other in x.members() {
                if other != node {
                    assert!(!y.contains(other) && !z.contains(other));
                }
            }
        }
    }
}
