//! Property-based tests for the topology crate.

use cubemm_topology::bits::{deposit_bits, extract_bits, hamming};
use cubemm_topology::{gray, gray_inverse, Grid2, Grid3, Subcube};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gray_is_a_bijection(i in 0usize..(1 << 20)) {
        prop_assert_eq!(gray_inverse(gray(i)), i);
    }

    #[test]
    fn gray_is_gf2_linear(a in 0usize..(1 << 16), b in 0usize..(1 << 16)) {
        // Linearity over GF(2) is what makes XOR-shifts commute with the
        // code; Cannon's hypercube form relies on it.
        prop_assert_eq!(gray(a ^ b), gray(a) ^ gray(b));
    }

    #[test]
    fn gray_neighbors_on_ring(bits in 1u32..12, idx in 0usize..(1 << 12)) {
        let q = 1usize << bits;
        let i = idx % q;
        let j = (i + 1) % q;
        prop_assert_eq!(hamming(gray(i) % q, gray(j) % q), 1);
    }

    #[test]
    fn deposit_extract_inverse(v in 0usize..256, seed in 0u64..u64::MAX) {
        // Pick 8 distinct dimensions pseudo-randomly from the seed.
        let mut dims: Vec<u32> = (0..32).collect();
        let mut s = seed;
        for i in (1..dims.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            dims.swap(i, j);
        }
        dims.truncate(8);
        let lab = deposit_bits(v, &dims);
        prop_assert_eq!(extract_bits(lab, &dims), v);
    }

    #[test]
    fn subcube_rank_member_roundtrip(dim in 1u32..10, base in 0usize..(1 << 10), r in 0usize..512) {
        let sc = Subcube::new(base, (0..dim).collect());
        let rank = r % sc.size();
        prop_assert_eq!(sc.rank_of(sc.member(rank)), rank);
    }

    #[test]
    fn grid2_row_col_intersect_in_one_node(bits in 1u32..6, seed in 0usize..4096) {
        let g = Grid2::new(1usize << (2 * bits)).unwrap();
        let i = seed % g.q();
        let j = (seed / g.q()) % g.q();
        let row = g.row(i);
        let col = g.col(j);
        let both: Vec<usize> = row.members().filter(|&n| col.contains(n)).collect();
        prop_assert_eq!(both, vec![g.node(i, j)]);
    }

    #[test]
    fn grid3_lines_are_orthogonal(bits in 1u32..4, seed in 0usize..4096) {
        let g = Grid3::new(1usize << (3 * bits)).unwrap();
        let q = g.q();
        let (i, j, k) = (seed % q, (seed / q) % q, (seed / q / q) % q);
        let x = g.x_line(j, k);
        let y = g.y_line(i, k);
        let z = g.z_line(i, j);
        let node = g.node(i, j, k);
        prop_assert!(x.contains(node) && y.contains(node) && z.contains(node));
        // Pairwise intersections are exactly the node itself.
        for other in x.members() {
            if other != node {
                prop_assert!(!y.contains(other) && !z.contains(other));
            }
        }
    }
}
